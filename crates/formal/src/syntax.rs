//! Syntax of the §4.1 C fragment.
//!
//! Straight-line commands over atomic types (int and pointers), pointer
//! types (atomic, anonymous/named structs, void), with the address-of
//! operator, malloc, casts and sizeof — exactly the grammar in the paper:
//!
//! ```text
//! a   ::= int | p*
//! p   ::= a | s | n | void
//! s   ::= struct { ...; id_i : a_i; ... }
//! lhs ::= x | *lhs | lhs.id | lhs->id
//! rhs ::= i | rhs + rhs | lhs | &lhs | (a) rhs | sizeof(a) | malloc(rhs)
//! c   ::= c ; c | lhs = rhs
//! ```
//!
//! Named structs (`n`) index a [`TypeEnv`] table, permitting recursive
//! data structures.

use std::fmt;

/// Id of a named struct in a [`TypeEnv`].
pub type StructName = usize;

/// Atomic types: what variables and struct fields hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicTy {
    /// `int`
    Int,
    /// `p*` — pointer to a pointer type.
    Ptr(Box<PointerTy>),
}

/// Pointer types (what can appear behind a `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointerTy {
    /// An atomic type.
    Atomic(AtomicTy),
    /// An anonymous struct.
    Struct(StructDef),
    /// A named struct (enables recursion).
    Named(StructName),
    /// `void`
    Void,
}

/// A struct definition: ordered fields of atomic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Field names and types.
    pub fields: Vec<(String, AtomicTy)>,
}

impl StructDef {
    /// Word offset of a field, with its type.
    pub fn field(&self, name: &str) -> Option<(u64, &AtomicTy)> {
        // Every atomic occupies one word in the fragment.
        for (off, (f, ty)) in self.fields.iter().enumerate() {
            if f == name {
                return Some((off as u64, ty));
            }
        }
        None
    }

    /// Size in words.
    pub fn size(&self) -> u64 {
        self.fields.len() as u64
    }
}

/// The named-struct table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeEnv {
    /// Definitions, indexed by [`StructName`].
    pub structs: Vec<StructDef>,
}

impl TypeEnv {
    /// Size of a pointer type in words (`None` for void / functions —
    /// not dereferenceable by value).
    pub fn size_of_pointer_ty(&self, p: &PointerTy) -> Option<u64> {
        match p {
            PointerTy::Atomic(_) => Some(1),
            PointerTy::Struct(s) => Some(s.size()),
            PointerTy::Named(n) => self.structs.get(*n).map(StructDef::size),
            PointerTy::Void => None,
        }
    }

    /// Resolves a pointer type to a struct definition if it is one.
    pub fn as_struct<'a>(&'a self, p: &'a PointerTy) -> Option<&'a StructDef> {
        match p {
            PointerTy::Struct(s) => Some(s),
            PointerTy::Named(n) => self.structs.get(*n),
            _ => None,
        }
    }
}

/// Size of an atomic type in words (always 1 in the fragment).
pub fn size_of_atomic(_a: &AtomicTy) -> u64 {
    1
}

/// Left-hand sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lhs {
    /// A variable.
    Var(String),
    /// `*lhs`
    Deref(Box<Lhs>),
    /// `lhs.id` — field of a struct lvalue.
    Field(Box<Lhs>, String),
    /// `lhs->id` — field through a struct pointer.
    Arrow(Box<Lhs>, String),
}

/// Right-hand sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rhs {
    /// Integer literal.
    Int(i64),
    /// Integer addition.
    Add(Box<Rhs>, Box<Rhs>),
    /// Read an lvalue.
    Read(Lhs),
    /// `&lhs`
    AddrOf(Lhs),
    /// `(a) rhs`
    Cast(AtomicTy, Box<Rhs>),
    /// `sizeof(a)`
    SizeOf(AtomicTy),
    /// `malloc(rhs)`
    Malloc(Box<Rhs>),
}

/// Commands: sequences of assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// `c ; c`
    Seq(Box<Cmd>, Box<Cmd>),
    /// `lhs = rhs`
    Assign(Lhs, Rhs),
}

impl Cmd {
    /// Flattens to the list of assignments, in order.
    pub fn assignments(&self) -> Vec<(&Lhs, &Rhs)> {
        match self {
            Cmd::Seq(a, b) => {
                let mut v = a.assignments();
                v.extend(b.assignments());
                v
            }
            Cmd::Assign(l, r) => vec![(l, r)],
        }
    }
}

impl fmt::Display for AtomicTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicTy::Int => write!(f, "int"),
            AtomicTy::Ptr(p) => write!(f, "{p:?}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_field_offsets() {
        let s = StructDef {
            fields: vec![
                ("a".into(), AtomicTy::Int),
                ("p".into(), AtomicTy::Ptr(Box::new(PointerTy::Void))),
                ("b".into(), AtomicTy::Int),
            ],
        };
        assert_eq!(s.field("a").map(|(o, _)| o), Some(0));
        assert_eq!(s.field("p").map(|(o, _)| o), Some(1));
        assert_eq!(s.field("b").map(|(o, _)| o), Some(2));
        assert_eq!(s.field("zz"), None);
        assert_eq!(s.size(), 3);
    }

    #[test]
    fn recursive_named_struct_sizes() {
        // struct list { int v; struct list* next; }
        let mut env = TypeEnv::default();
        env.structs.push(StructDef {
            fields: vec![
                ("v".into(), AtomicTy::Int),
                ("next".into(), AtomicTy::Ptr(Box::new(PointerTy::Named(0)))),
            ],
        });
        assert_eq!(env.size_of_pointer_ty(&PointerTy::Named(0)), Some(2));
        assert_eq!(env.size_of_pointer_ty(&PointerTy::Void), None);
    }

    #[test]
    fn command_flattening() {
        let c = Cmd::Seq(
            Box::new(Cmd::Assign(Lhs::Var("x".into()), Rhs::Int(1))),
            Box::new(Cmd::Seq(
                Box::new(Cmd::Assign(Lhs::Var("y".into()), Rhs::Int(2))),
                Box::new(Cmd::Assign(Lhs::Var("z".into()), Rhs::Int(3))),
            )),
        );
        assert_eq!(c.assignments().len(), 3);
    }
}
