//! # sb-formal — executable formalization of SoftBound's §4
//!
//! The paper mechanizes a safety proof in Coq for a straight-line C
//! fragment: a partial operational semantics that is *undefined* on
//! spatial violations, an instrumented semantics that propagates
//! `(base, bound)` metadata and asserts bounds at dereferences, a
//! well-formedness invariant over environments and memories, and
//! Preservation/Progress theorems culminating in Corollary 4.1 ("if the
//! instrumented run succeeds, the original C program has no memory
//! violation").
//!
//! This crate is the executable counterpart: the same [syntax](mod@syntax),
//! the same [two-layer semantics and invariants](semantics), and the
//! theorems as *checkable properties* ([`check_preservation`],
//! [`check_progress`], [`check_corollary`]) that the test suite verifies
//! over thousands of [randomly generated well-typed programs](gen) —
//! including wild casts and forged pointers.

pub mod gen;
pub mod semantics;
pub mod syntax;

pub use semantics::{
    check_corollary, check_preservation, check_progress, eval_instrumented, eval_plain,
    typecheck_cmd, wf_data, wf_env, wf_mem, CResult, Env, MVal, Memory, Out, MAX_ADDR, MIN_ADDR,
};
pub use syntax::{AtomicTy, Cmd, Lhs, PointerTy, Rhs, StructDef, TypeEnv};
