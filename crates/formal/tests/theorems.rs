//! Machine-checking of the §4 theorems over randomized well-typed
//! programs — the executable substitute for the paper's Coq proofs.

use proptest::prelude::*;
use sb_formal::gen::{gen_cmd, universe, Rng};
use sb_formal::{
    check_corollary, check_preservation, check_progress, eval_instrumented, eval_plain, wf_env,
    CResult,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Theorem 4.1 (Preservation): ⊢E E ∧ S ⊢c c ∧ (E,c) ⇒c (r,E') → ⊢E E'.
    #[test]
    fn preservation(seed in any::<u64>(), len in 1u32..8) {
        let (tenv, env) = universe();
        let c = gen_cmd(&mut Rng(seed), &tenv, &env, len);
        prop_assert!(check_preservation(&tenv, &env, &c).is_ok());
    }

    /// Theorem 4.2 (Progress): well-typed commands end in OK, OutOfMem or
    /// Abort — the instrumented semantics never gets stuck.
    #[test]
    fn progress(seed in any::<u64>(), len in 1u32..8) {
        let (tenv, env) = universe();
        let c = gen_cmd(&mut Rng(seed), &tenv, &env, len);
        let r = check_progress(&tenv, &env, &c);
        prop_assert!(r.is_ok(), "{:?}", r);
    }

    /// Corollary 4.1: an OK instrumented run implies the plain C program
    /// commits no memory violation (and computes the same memory).
    #[test]
    fn corollary(seed in any::<u64>(), len in 1u32..8) {
        let (tenv, env) = universe();
        let c = gen_cmd(&mut Rng(seed), &tenv, &env, len);
        prop_assert!(check_corollary(&tenv, &env, &c).is_ok());
    }

    /// Soundness direction: whenever the *plain* semantics is undefined
    /// (stuck on a spatial violation), the instrumented semantics aborted
    /// at or before that point — it never silently runs past a violation
    /// into Ok.
    #[test]
    fn no_silent_violations(seed in any::<u64>(), len in 1u32..8) {
        let (tenv, env) = universe();
        let c = gen_cmd(&mut Rng(seed), &tenv, &env, len);
        let mut p = env.clone();
        let plain = eval_plain(&tenv, &mut p, &c);
        let mut i = env.clone();
        let inst = eval_instrumented(&tenv, &mut i, &c);
        if plain == CResult::Stuck {
            prop_assert_ne!(inst, CResult::Ok, "violation ran to completion under SoftBound");
            prop_assert_ne!(inst, CResult::Stuck);
        }
        prop_assert!(wf_env(&i), "final environment ill-formed");
    }
}
