//! The §6.4 source-compatibility case studies: two network daemons,
//! patterned on the paper's tinyftp-0.2 and NullLogic nhttpd-0.5.1.
//!
//! Each daemon is an ordinary pointer-and-string C program — command
//! parsing, path normalization, an in-memory filesystem of linked
//! structures, session state — driven by a synthetic request stream baked
//! into the program (the VM has no sockets; what §6.4 measures is that
//! SoftBound "successfully transformed these network applications without
//! requiring any source code modifications and no false positives during
//! program execution", which is exactly what the harness asserts).
//!
//! Both daemons return a positive response checksum on success.

/// A daemon case study.
#[derive(Debug, Clone, Copy)]
pub struct Daemon {
    /// Name (paper counterpart).
    pub name: &'static str,
    /// CIR-C source.
    pub source: &'static str,
    /// What it models.
    pub description: &'static str,
}

/// Both daemons.
pub fn all() -> Vec<Daemon> {
    vec![
        Daemon {
            name: "tinyftp",
            source: TINYFTP,
            description: "FTP-like command processor (USER/PASS/CWD/PWD/MKD/STOR/RETR/LIST/DELE/QUIT) over an in-memory tree filesystem",
        },
        Daemon {
            name: "nhttpd",
            source: NHTTPD,
            description: "HTTP-like request handler (request line, headers, query strings, routing, static pages, 404s) over multiple connections",
        },
    ]
}

const TINYFTP: &str = r#"
// tinyftp: a miniature FTP server core. Commands arrive as lines; the
// server maintains a session (auth state, cwd) and an in-memory
// filesystem (tree of nodes with linked-list children).

struct fsnode {
    char name[32];
    int is_dir;
    char data[64];
    int size;
    struct fsnode* child;    // first child (dirs)
    struct fsnode* sibling;  // next entry in parent
};

struct session {
    int authed;
    char user[32];
    struct fsnode* cwd;
    int replies;
    long checksum;
};

struct fsnode* fs_root;

struct fsnode* node_new(char* name, int is_dir) {
    struct fsnode* n = (struct fsnode*)malloc(sizeof(struct fsnode));
    strncpy(n->name, name, 31);
    n->name[31] = 0;
    n->is_dir = is_dir;
    n->data[0] = 0;
    n->size = 0;
    n->child = NULL;
    n->sibling = NULL;
    return n;
}

void node_attach(struct fsnode* dir, struct fsnode* n) {
    n->sibling = dir->child;
    dir->child = n;
}

struct fsnode* node_find(struct fsnode* dir, char* name) {
    for (struct fsnode* c = dir->child; c != NULL; c = c->sibling) {
        if (strcmp(c->name, name) == 0) return c;
    }
    return NULL;
}

void fs_init(void) {
    fs_root = node_new("/", 1);
    struct fsnode* pub = node_new("pub", 1);
    node_attach(fs_root, pub);
    struct fsnode* readme = node_new("readme.txt", 0);
    strcpy(readme->data, "welcome to tinyftp");
    readme->size = (int)strlen(readme->data);
    node_attach(pub, readme);
    struct fsnode* etc = node_new("etc", 1);
    node_attach(fs_root, etc);
}

void reply(struct session* s, int code, char* text) {
    s->replies++;
    s->checksum = (s->checksum * 131 + code + strlen(text)) % 1000000007;
}

// Split "CMD arg" into command (upper-cased) and argument.
int split(char* line, char* cmd, char* arg) {
    int i = 0;
    while (line[i] != 0 && line[i] != ' ' && i < 15) {
        char c = line[i];
        if (c >= 'a' && c <= 'z') c = (char)(c - 32);
        cmd[i] = c;
        i++;
    }
    cmd[i] = 0;
    int j = 0;
    if (line[i] == ' ') {
        i++;
        while (line[i] != 0 && j < 63) { arg[j] = line[i]; i++; j++; }
    }
    arg[j] = 0;
    return j;
}

void handle(struct session* s, char* line) {
    char cmd[16];
    char arg[64];
    split(line, cmd, arg);

    if (strcmp(cmd, "USER") == 0) {
        strncpy(s->user, arg, 31);
        s->user[31] = 0;
        reply(s, 331, "password required");
        return;
    }
    if (strcmp(cmd, "PASS") == 0) {
        if (strcmp(s->user, "anonymous") == 0 || strcmp(arg, "hunter2") == 0) {
            s->authed = 1;
            reply(s, 230, "logged in");
        } else {
            reply(s, 530, "login incorrect");
        }
        return;
    }
    if (!s->authed) { reply(s, 530, "not logged in"); return; }

    if (strcmp(cmd, "PWD") == 0) { reply(s, 257, s->cwd->name); return; }
    if (strcmp(cmd, "CWD") == 0) {
        if (strcmp(arg, "/") == 0) { s->cwd = fs_root; reply(s, 250, "ok"); return; }
        struct fsnode* d = node_find(s->cwd, arg);
        if (d != NULL && d->is_dir) { s->cwd = d; reply(s, 250, "ok"); }
        else reply(s, 550, "no such directory");
        return;
    }
    if (strcmp(cmd, "MKD") == 0) {
        if (node_find(s->cwd, arg) != NULL) { reply(s, 550, "exists"); return; }
        node_attach(s->cwd, node_new(arg, 1));
        reply(s, 257, "created");
        return;
    }
    if (strcmp(cmd, "STOR") == 0) {
        // "STOR name:contents"
        char name[32];
        int k = 0;
        while (arg[k] != 0 && arg[k] != ':' && k < 31) { name[k] = arg[k]; k++; }
        name[k] = 0;
        struct fsnode* f = node_find(s->cwd, name);
        if (f == NULL) { f = node_new(name, 0); node_attach(s->cwd, f); }
        int m = 0;
        if (arg[k] == ':') {
            k++;
            while (arg[k] != 0 && m < 63) { f->data[m] = arg[k]; k++; m++; }
        }
        f->data[m] = 0;
        f->size = m;
        reply(s, 226, "stored");
        return;
    }
    if (strcmp(cmd, "RETR") == 0) {
        struct fsnode* f = node_find(s->cwd, arg);
        if (f != NULL && !f->is_dir) {
            s->checksum = (s->checksum + strlen(f->data) * 7 + f->size) % 1000000007;
            reply(s, 226, "transfer complete");
        } else reply(s, 550, "no such file");
        return;
    }
    if (strcmp(cmd, "LIST") == 0) {
        int count = 0;
        for (struct fsnode* c = s->cwd->child; c != NULL; c = c->sibling) {
            count++;
            s->checksum = (s->checksum + strlen(c->name) + c->is_dir) % 1000000007;
        }
        reply(s, 226, count > 0 ? "listed" : "empty");
        return;
    }
    if (strcmp(cmd, "DELE") == 0) {
        struct fsnode* prev = NULL;
        for (struct fsnode* c = s->cwd->child; c != NULL; c = c->sibling) {
            if (strcmp(c->name, arg) == 0 && !c->is_dir) {
                if (prev == NULL) s->cwd->child = c->sibling;
                else prev->sibling = c->sibling;
                free(c);
                reply(s, 250, "deleted");
                return;
            }
            prev = c;
        }
        reply(s, 550, "not found");
        return;
    }
    if (strcmp(cmd, "QUIT") == 0) { reply(s, 221, "bye"); return; }
    reply(s, 502, "command not implemented");
}

char* script[32];

int main(int n) {
    if (n == 0) n = 3;
    fs_init();
    int ns = 0;
    script[ns] = "USER anonymous"; ns++;
    script[ns] = "PASS guest"; ns++;
    script[ns] = "PWD"; ns++;
    script[ns] = "CWD pub"; ns++;
    script[ns] = "LIST"; ns++;
    script[ns] = "RETR readme.txt"; ns++;
    script[ns] = "CWD /"; ns++;
    script[ns] = "MKD uploads"; ns++;
    script[ns] = "CWD uploads"; ns++;
    script[ns] = "STOR notes.txt:some notes about softbound"; ns++;
    script[ns] = "RETR notes.txt"; ns++;
    script[ns] = "STOR long.txt:0123456789012345678901234567890123456789012345678901234567890ab"; ns++;
    script[ns] = "RETR long.txt"; ns++;
    script[ns] = "DELE notes.txt"; ns++;
    script[ns] = "LIST"; ns++;
    script[ns] = "CWD nosuch"; ns++;
    script[ns] = "NOOP"; ns++;
    script[ns] = "QUIT"; ns++;

    long total = 0;
    for (int si = 0; si < n; si++) {
        struct session s;
        s.authed = 0;
        s.user[0] = 0;
        s.cwd = fs_root;
        s.replies = 0;
        s.checksum = si;
        for (int i = 0; i < ns; i++) {
            char line[96];
            strncpy(line, script[i], 95);
            line[95] = 0;
            handle(&s, line);
        }
        total = (total + s.checksum + s.replies) % 1000000007;
    }
    return (int)(total % 100000) + 1;
}
"#;

const NHTTPD: &str = r#"
// nhttpd: a miniature HTTP server core — request-line parsing, header
// scanning, query-string decoding, routing, and response generation.

struct route {
    char path[32];
    int status;
    char* body;
    struct route* next;
};

struct route* routes;

void add_route(char* path, int status, char* body) {
    struct route* r = (struct route*)malloc(sizeof(struct route));
    strncpy(r->path, path, 31);
    r->path[31] = 0;
    r->status = status;
    r->body = body;
    r->next = routes;
    routes = r;
}

struct route* find_route(char* path) {
    for (struct route* r = routes; r != NULL; r = r->next)
        if (strcmp(r->path, path) == 0) return r;
    return NULL;
}

// Parse "GET /path?k=v HTTP/1.0" into method and path; returns the sum of
// numeric query values (for the checksum).
long parse_request(char* line, char* method, char* path) {
    int i = 0;
    while (line[i] != 0 && line[i] != ' ' && i < 7) { method[i] = line[i]; i++; }
    method[i] = 0;
    while (line[i] == ' ') i++;
    int j = 0;
    long qsum = 0;
    while (line[i] != 0 && line[i] != ' ' && line[i] != '?' && j < 31) {
        path[j] = line[i];
        i++; j++;
    }
    path[j] = 0;
    if (line[i] == '?') {
        i++;
        while (line[i] != 0 && line[i] != ' ') {
            long v = 0;
            while (line[i] != 0 && line[i] != '=' && line[i] != ' ' && line[i] != '&') i++;
            if (line[i] == '=') {
                i++;
                while (line[i] >= '0' && line[i] <= '9') { v = v * 10 + (line[i] - '0'); i++; }
            }
            qsum += v;
            if (line[i] == '&') i++;
        }
    }
    return qsum;
}

int header_value(char* headers, char* name, char* out, int cap) {
    int i = 0;
    int nlen = (int)strlen(name);
    while (headers[i] != 0) {
        if (strncmp(&headers[i], name, nlen) == 0 && headers[i + nlen] == ':') {
            int k = i + nlen + 1;
            while (headers[k] == ' ') k++;
            int j = 0;
            while (headers[k] != 0 && headers[k] != '\n' && j < cap - 1) {
                out[j] = headers[k];
                j++; k++;
            }
            out[j] = 0;
            return 1;
        }
        while (headers[i] != 0 && headers[i] != '\n') i++;
        if (headers[i] == '\n') i++;
    }
    out[0] = 0;
    return 0;
}

long respond(char* reqline, char* headers) {
    char method[8];
    char path[32];
    long qsum = parse_request(reqline, method, path);
    char host[32];
    header_value(headers, "Host", host, 32);
    char agent[48];
    header_value(headers, "User-Agent", agent, 48);

    long checksum = qsum + strlen(host) + strlen(agent) * 3;
    if (strcmp(method, "GET") != 0 && strcmp(method, "HEAD") != 0) {
        return checksum + 405;
    }
    struct route* r = find_route(path);
    if (r == NULL) {
        return checksum + 404;
    }
    char body[128];
    strncpy(body, r->body, 127);
    body[127] = 0;
    checksum += r->status + (long)strlen(body);
    if (strcmp(method, "HEAD") == 0) checksum -= (long)strlen(body);
    return checksum;
}

char* requests[16];
char* headerset[16];

int main(int n) {
    if (n == 0) n = 5;
    routes = NULL;
    add_route("/", 200, "<html>index</html>");
    add_route("/about", 200, "<html>about softbound reproduction</html>");
    add_route("/cgi/stats", 200, "uptime=9999 connections=42");
    add_route("/old", 301, "moved");

    int nreq = 0;
    requests[nreq] = "GET / HTTP/1.0"; nreq++;
    requests[nreq] = "GET /about HTTP/1.0"; nreq++;
    requests[nreq] = "GET /cgi/stats?width=100&height=50 HTTP/1.0"; nreq++;
    requests[nreq] = "HEAD /about HTTP/1.0"; nreq++;
    requests[nreq] = "GET /missing HTTP/1.0"; nreq++;
    requests[nreq] = "POST / HTTP/1.0"; nreq++;
    requests[nreq] = "GET /old?y=7 HTTP/1.0"; nreq++;

    headerset[0] = "Host: example.test\nUser-Agent: repro-agent/1.0\nAccept: */*\n";
    headerset[1] = "Host: other.test\nUser-Agent: curl\n";
    headerset[2] = "User-Agent: noname\n";

    long total = 0;
    for (int conn = 0; conn < n; conn++) {
        for (int i = 0; i < nreq; i++) {
            char line[96];
            char hdrs[128];
            strncpy(line, requests[i], 95);
            line[95] = 0;
            strncpy(hdrs, headerset[(conn + i) % 3], 127);
            hdrs[127] = 0;
            total = (total + respond(line, hdrs)) % 1000000007;
        }
    }
    return (int)(total % 100000) + 1;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daemons_compile() {
        for d in all() {
            sb_cir::compile(d.source).unwrap_or_else(|e| panic!("{}: {e}", d.name));
        }
    }

    #[test]
    fn two_daemons() {
        assert_eq!(all().len(), 2);
    }
}
