//! Request streams for fleet serving: deterministic, seedable argument
//! sequences that shape daemon traffic the way the §6.4 case-study
//! harnesses drive it — plus a request handler whose safety depends on
//! the request, so mixed streams exercise both the serving fast path
//! and SoftBound's trap path under pool churn.
//!
//! Everything here is a pure function of `(n, seed)`: the fleet
//! determinism suite replays the exact stream serially and compares
//! observations element-by-element, so generators must never consult
//! ambient state (time, thread ids, global RNGs).

/// An nhttpd-style request handler whose behaviour — and *safety* —
/// depends on its argument. The request is a synthetic "header length":
/// lengths that fit the stack buffer are parsed and checksummed;
/// oversized lengths walk past the buffer exactly like the unchecked
/// `strcpy`-into-`char[16]` pattern the paper's daemon studies protect,
/// so an instrumented fleet answers them with a spatial-violation trap
/// instead of corrupted memory.
pub const MIXED_HANDLER: &str = r#"
    int main(int n) {
        char buf[16];
        int i = 0;
        while (i < n) {
            buf[i] = (char)('a' + (i % 26));
            i++;
        }
        int sum = 0;
        for (int j = 0; j < i; j++) sum += buf[j];
        return sum + n;
    }
"#;

/// Deterministic 64-bit LCG step (same constants as the randomized
/// metadata tests); the top bits are the usable ones.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A stream of `n` nhttpd batch sizes: each request asks the daemon to
/// serve between 1 and 4 connections (7 HTTP requests per connection),
/// mimicking the bursty per-accept batching of a real server loop.
/// Deterministic in `(n, seed)`.
pub fn nhttpd_batches(n: usize, seed: u64) -> Vec<i64> {
    let mut state = seed ^ 0x6e68_7474_7064_5f31; // "nhttpd_1"
    (0..n).map(|_| (lcg(&mut state) % 4 + 1) as i64).collect()
}

/// A mixed safe/trapping stream for [`MIXED_HANDLER`]: mostly in-bounds
/// header lengths (0..=16), with every `trap_every`-th request carrying
/// an oversized length (17..=48) that must end in a spatial-violation
/// trap. `trap_every == 0` disables trapping requests entirely.
/// Deterministic in `(n, trap_every, seed)`.
pub fn mixed_traffic(n: usize, trap_every: usize, seed: u64) -> Vec<i64> {
    let mut state = seed ^ 0x6d69_7865_645f_7631; // "mixed_v1"
    (0..n)
        .map(|i| {
            let r = lcg(&mut state);
            if trap_every != 0 && (i + 1) % trap_every == 0 {
                (17 + r % 32) as i64
            } else {
                (r % 17) as i64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_compiles() {
        sb_cir::compile(MIXED_HANDLER).expect("mixed handler compiles");
    }

    #[test]
    fn streams_are_deterministic_in_their_seed() {
        assert_eq!(nhttpd_batches(64, 7), nhttpd_batches(64, 7));
        assert_ne!(nhttpd_batches(64, 7), nhttpd_batches(64, 8));
        assert_eq!(mixed_traffic(64, 4, 7), mixed_traffic(64, 4, 7));
        assert_ne!(mixed_traffic(64, 4, 7), mixed_traffic(64, 4, 8));
    }

    #[test]
    fn nhttpd_batches_stay_in_range() {
        for b in nhttpd_batches(256, 42) {
            assert!((1..=4).contains(&b), "batch size {b} out of range");
        }
    }

    #[test]
    fn empty_batches_are_empty_not_errors() {
        assert!(nhttpd_batches(0, 7).is_empty());
        assert!(mixed_traffic(0, 4, 7).is_empty());
        assert!(mixed_traffic(0, 0, 7).is_empty());
    }

    #[test]
    fn trap_every_one_makes_every_request_oversized() {
        let stream = mixed_traffic(64, 1, 9);
        assert_eq!(stream.len(), 64);
        assert!(
            stream.iter().all(|&len| len > 16),
            "trap_every = 1 must produce an all-trapping stream"
        );
    }

    #[test]
    fn single_request_streams_work() {
        assert_eq!(nhttpd_batches(1, 7).len(), 1);
        let safe = mixed_traffic(1, 0, 7);
        assert!((0..=16).contains(&safe[0]));
        let trapping = mixed_traffic(1, 1, 7);
        assert!(trapping[0] > 16);
    }

    #[test]
    fn mixed_traffic_places_trapping_requests_exactly() {
        let stream = mixed_traffic(32, 4, 1);
        for (i, &len) in stream.iter().enumerate() {
            if (i + 1) % 4 == 0 {
                assert!(len > 16, "request {i} should overflow, got {len}");
            } else {
                assert!(
                    (0..=16).contains(&len),
                    "request {i} should be safe, got {len}"
                );
            }
        }
        assert!(
            mixed_traffic(32, 0, 1)
                .iter()
                .all(|&l| (0..=16).contains(&l)),
            "trap_every = 0 must produce an all-safe stream"
        );
    }
}
