//! BugBench-style buggy programs (Table 4).
//!
//! Four programs reproducing the *bug classes* of the BugBench entries
//! the paper evaluates (go, compress, polymorph, gzip). Each triggers a
//! real overflow when run; the class determines which tools can see it:
//!
//! | program   | bug class                          | Valgrind | Mudflap | SB-store | SB-full |
//! |-----------|------------------------------------|----------|---------|----------|---------|
//! | go        | sub-object *read* overflow (stack) | no       | no      | no       | yes     |
//! | compress  | global array *write* overflow      | no       | yes     | yes      | yes     |
//! | polymorph | heap *write* overflow (strcpy)     | yes      | yes     | yes      | yes     |
//! | gzip      | heap *write* overflow (loop)       | yes      | yes     | yes      | yes     |
//!
//! This is exactly the detection matrix of the paper's Table 4.

/// Expected detection outcomes for one tool row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Valgrind/Memcheck-like.
    pub valgrind: bool,
    /// Mudflap-like object database.
    pub mudflap: bool,
    /// SoftBound store-only.
    pub store_only: bool,
    /// SoftBound full.
    pub full: bool,
}

/// One buggy program.
#[derive(Debug, Clone, Copy)]
pub struct BugProgram {
    /// BugBench-style name.
    pub name: &'static str,
    /// CIR-C source (running `main` triggers the bug).
    pub source: &'static str,
    /// Bug class description.
    pub description: &'static str,
    /// Paper's Table 4 row.
    pub expected: Expected,
}

/// The four Table 4 programs.
pub fn all() -> Vec<BugProgram> {
    vec![
        BugProgram {
            name: "go",
            source: GO_BUG,
            description: "sub-object read overflow: board evaluation reads past an array \
                          nested inside a stack struct (whole-object tools and store-only \
                          checking are blind to it)",
            expected: Expected {
                valgrind: false,
                mudflap: false,
                store_only: false,
                full: true,
            },
        },
        BugProgram {
            name: "compress",
            source: COMPRESS_BUG,
            description: "global write overflow: the code table writer runs one slot past \
                          a global array (no heap redzones there, so Valgrind misses it)",
            expected: Expected {
                valgrind: false,
                mudflap: true,
                store_only: true,
                full: true,
            },
        },
        BugProgram {
            name: "polymorph",
            source: POLYMORPH_BUG,
            description: "heap strcpy overflow: a long filename is copied into a \
                          fixed-size heap buffer",
            expected: Expected {
                valgrind: true,
                mudflap: true,
                store_only: true,
                full: true,
            },
        },
        BugProgram {
            name: "gzip",
            source: GZIP_BUG,
            description: "heap loop write overflow: the output window writer exceeds the \
                          allocated buffer",
            expected: Expected {
                valgrind: true,
                mudflap: true,
                store_only: true,
                full: true,
            },
        },
    ]
}

/// Looks up a bug program by name.
pub fn by_name(name: &str) -> Option<BugProgram> {
    all().into_iter().find(|b| b.name == name)
}

const GO_BUG: &str = r#"
// go (BugBench): evaluation struct holds a pattern array next to weights;
// the scan loop reads one entry past the pattern — a sub-object *read*
// overflow inside one stack object.
struct eval { int pattern[8]; int weights[8]; };

int score(struct eval* e, int n) {
    int s = 0;
    for (int i = 0; i <= n; i++) {   // off-by-one: i == n reads weights[0]
        s += e->pattern[i];
    }
    return s;
}

int main() {
    struct eval e;
    for (int i = 0; i < 8; i++) { e.pattern[i] = i; e.weights[i] = 1000 + i; }
    int s = score(&e, 8);
    // The corrupted read silently folds weights[0] into the score.
    return s == 28 + 1000 ? 1 : 2;
}
"#;

const COMPRESS_BUG: &str = r#"
// compress (BugBench): code table in the data segment; the writer loop
// runs past the end, through the adjacent global and beyond.
int codes[256];
int magic = 42;

int main() {
    for (int i = 0; i <= 260; i++) {   // loop bound bug
        codes[i] = i;
    }
    return magic == 42 ? 0 : 1;        // magic is clobbered silently
}
"#;

const POLYMORPH_BUG: &str = r#"
// polymorph (BugBench): filename normalizer copies an attacker-length
// name into a fixed heap buffer.
int main() {
    char* target = (char*)malloc(16);
    char name[64];
    strcpy(name, "this_filename_is_way_too_long_for_the_buffer.txt");
    strcpy(target, name);              // heap write overflow
    return (int)strlen(target);
}
"#;

const GZIP_BUG: &str = r#"
// gzip (BugBench): the output window is allocated too small and the
// writer loop exceeds it.
int main() {
    int window_size = 32;
    char* window = (char*)malloc(window_size);
    for (int i = 0; i < window_size + 8; i++) {  // loop bound bug
        window[i] = (char)(i & 127);
    }
    return window[0];
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bugbench_programs() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["go", "compress", "polymorph", "gzip"]);
    }

    #[test]
    fn sources_compile() {
        for b in all() {
            sb_cir::compile(b.source).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        }
    }

    #[test]
    fn go_row_matches_paper() {
        let go = by_name("go").expect("exists");
        assert_eq!(
            go.expected,
            Expected {
                valgrind: false,
                mudflap: false,
                store_only: false,
                full: true
            }
        );
    }
}
