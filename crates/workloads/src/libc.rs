//! libc-kernel workload corpus: string/buffer semantic kernels.
//!
//! SoftBound's evaluation (and the CUP/Checked-C follow-on work) is
//! dominated by `memcpy`/`strcpy`-style traffic, not pointer chasing.
//! This module supplies that corpus: ~10 small CIR-C kernels, each a
//! self-contained `main(cap, len, seed)` that allocates one *guarded*
//! buffer of `cap` bytes and then drives a libc-shaped operation over
//! `len` bytes of it. Whether the run is memory-safe is a pure function
//! of `(cap, len)` — the [`LibcKernel::safe`] predicate — so a fuzzer
//! can steer half its cases into the overflow regime and know, ahead of
//! time, the exact first out-of-bounds byte the instrumented run must
//! trap on ([`LibcKernel::fault_addr`]).
//!
//! Protocol every kernel follows:
//!
//! - signature `int main(int cap, int len, int seed)`;
//! - first line of output is `G <base> <eff_cap>` where `<base>` is the
//!   guarded buffer's address and `<eff_cap>` its real capacity (equal
//!   to `cap` except for fixed-size stack kernels like `header`) — the
//!   conformance harness parses this line (it survives in the partial
//!   output of a trapped run) to pin the expected faulting address;
//! - on a safe run, a deterministic checksum is printed and returned.
//!
//! Half the kernels overflow through the §5.2 *wrapper* checks (the
//! builtin `memcpy`/`strcpy`/... range checks, trap scheme
//! `"softbound-wrapper"`), the other half through the per-access
//! *explicit* checks the transform inserts (scheme `"softbound"`), so a
//! differential fuzzer exercises both trap paths of every facility.

/// One libc-style kernel plus the oracle the conformance fuzzer needs.
#[derive(Clone, Copy)]
pub struct LibcKernel {
    /// Kernel name (`memcpy`, `strcpy_off_by_one`, ...).
    pub name: &'static str,
    /// CIR-C source following the `main(cap, len, seed)` protocol.
    pub source: &'static str,
    /// What the kernel models and how it overflows.
    pub description: &'static str,
    /// `true` iff running with these `(cap, len)` touches no
    /// out-of-bounds byte (`seed` never affects safety).
    pub safe: fn(cap: i64, len: i64) -> bool,
    /// Whether the overflowing access is a store (`true`) or load.
    pub overflow_is_store: bool,
    /// First out-of-bounds byte touched on an unsafe run, given the
    /// guarded base parsed from the kernel's `G` line.
    pub fault_addr: fn(base: u64, cap: i64, len: i64) -> u64,
    /// Trap scheme an instrumented run must report: the builtin
    /// wrapper checks (`"softbound-wrapper"`) or the per-access
    /// explicit checks (`"softbound"`).
    pub trap_scheme: &'static str,
}

impl std::fmt::Debug for LibcKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LibcKernel")
            .field("name", &self.name)
            .field("trap_scheme", &self.trap_scheme)
            .field("overflow_is_store", &self.overflow_is_store)
            .finish_non_exhaustive()
    }
}

/// The full corpus, in a fixed order the fuzzer indexes by.
pub fn all() -> Vec<LibcKernel> {
    vec![
        LibcKernel {
            name: "memcpy",
            source: MEMCPY,
            description: "block copy into a heap buffer via the memcpy wrapper; \
                          len > cap overflows the destination range check",
            safe: |cap, len| len <= cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound-wrapper",
        },
        LibcKernel {
            name: "memmove",
            source: MEMMOVE,
            description: "overlapping backward copy written at the CIR level \
                          (shift-right by 3); the highest destination byte is \
                          touched first, so the explicit store check fires there",
            safe: |cap, len| {
                let m = len.min(cap);
                m == 0 || m + 3 <= cap
            },
            overflow_is_store: true,
            fault_addr: |base, cap, len| base + (len.min(cap) + 2) as u64,
            trap_scheme: "softbound",
        },
        LibcKernel {
            name: "memset",
            source: MEMSET,
            description: "fill via the memset wrapper; len > cap overflows the \
                          destination range check",
            safe: |cap, len| len <= cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound-wrapper",
        },
        LibcKernel {
            name: "strcpy",
            source: STRCPY,
            description: "string copy via the strcpy wrapper; the terminator \
                          makes len + 1 bytes, so len >= cap overflows",
            safe: |cap, len| len < cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound-wrapper",
        },
        LibcKernel {
            name: "strncpy",
            source: STRNCPY,
            description: "bounded string copy via the strncpy wrapper; writes \
                          exactly len bytes, so len > cap overflows",
            safe: |cap, len| len <= cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound-wrapper",
        },
        LibcKernel {
            name: "strcmp",
            source: STRCMP,
            description: "compare against an unterminated buffer: len >= cap \
                          leaves no NUL inside the object, so the strcmp \
                          wrapper's read range check overflows",
            safe: |cap, len| len < cap,
            overflow_is_store: false,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound-wrapper",
        },
        LibcKernel {
            name: "strtok",
            source: STRTOK,
            description: "strtok-alike tokenizer scanning len bytes of a cap \
                          buffer at the CIR level; len > cap is an explicit \
                          load-check overflow at the first byte past the object",
            safe: |cap, len| len <= cap,
            overflow_is_store: false,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound",
        },
        LibcKernel {
            name: "sprintf",
            source: SPRINTF,
            description: "sprintf-alike formatter writing a 5-digit value, a \
                          separator, len name bytes and a NUL (len + 7 bytes) \
                          byte-by-byte; the stores are sequential, so the first \
                          out-of-bounds store is exactly base + cap",
            safe: |cap, len| len + 7 <= cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound",
        },
        LibcKernel {
            name: "strcpy_off_by_one",
            source: OFF_BY_ONE,
            description: "classic BugBench off-by-one: a hand-rolled strcpy \
                          loop with `i <= len` copies the terminator into slot \
                          len, so len >= cap overflows by exactly one byte",
            safe: |cap, len| len < cap,
            overflow_is_store: true,
            fault_addr: |base, cap, _| base + cap as u64,
            trap_scheme: "softbound",
        },
        LibcKernel {
            name: "negindex",
            source: NEGINDEX,
            description: "negative-index underflow (the libpng-style \
                          `length - offset` pattern): a reverse scan starts at \
                          d[cap - 1] and walks down len bytes, so len > cap \
                          reads below the object's base — the only kernel whose \
                          first out-of-bounds byte is *before* the object",
            safe: |cap, len| len <= cap,
            overflow_is_store: false,
            fault_addr: |base, _, _| base.wrapping_sub(1),
            trap_scheme: "softbound",
        },
        LibcKernel {
            name: "header",
            source: HEADER,
            description: "unchecked header copy (the nhttpd pattern): len \
                          request bytes into a fixed char[16] stack buffer; \
                          cap is ignored, the G line reports 16",
            safe: |_, len| len <= 16,
            overflow_is_store: true,
            fault_addr: |base, _, _| base + 16,
            trap_scheme: "softbound",
        },
    ]
}

/// Looks up a kernel by name.
pub fn by_name(name: &str) -> Option<LibcKernel> {
    all().into_iter().find(|k| k.name == name)
}

const MEMCPY: &str = r#"
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    char s[80];
    for (int i = 0; i < len; i++) s[i] = (char)('a' + ((seed + i * 3) % 26));
    memcpy(d, s, len);
    int sum = 0;
    for (int i = 0; i < len; i++) sum += d[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const MEMMOVE: &str = r#"
// memmove with overlap, written out at the CIR level (there is no
// memmove builtin): dst = src + 3 inside one buffer, so a correct move
// must copy backwards. The backward loop touches the highest byte
// first, which is what pins the faulting address of an overflow.
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    int m = len < cap ? len : cap;
    for (int i = 0; i < m; i++) d[i] = (char)('a' + ((seed + i * 7) % 26));
    for (int i = m - 1; i >= 0; i--) d[i + 3] = d[i];
    int sum = 0;
    for (int i = 0; i < m; i++) sum += d[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const MEMSET: &str = r#"
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    memset(d, 'a' + seed % 26, len);
    int sum = 0;
    for (int i = 0; i < len; i++) sum += d[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const STRCPY: &str = r#"
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    char s[80];
    for (int i = 0; i < len; i++) s[i] = (char)('a' + ((seed + i) % 26));
    s[len] = (char)0;
    strcpy(d, s);
    printf("R %d\n", (int)strlen(d));
    return ((int)strlen(d) + len) % 100000;
}
"#;

const STRNCPY: &str = r#"
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    char s[80];
    for (int i = 0; i < len; i++) s[i] = (char)('a' + ((seed + i * 5) % 26));
    s[len] = (char)0;
    strncpy(d, s, len);
    int sum = 0;
    for (int i = 0; i < len; i++) sum += d[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const STRCMP: &str = r#"
// Unterminated-string read: when len >= cap the guarded buffer is
// filled completely and never NUL-terminated, so strcmp's scan (and
// its wrapper range check) walks past the object.
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    int m = len < cap ? len : cap;
    for (int i = 0; i < m; i++) d[i] = (char)('a' + ((seed + i) % 26));
    if (len < cap) d[len] = (char)0;
    char s[80];
    for (int i = 0; i < m; i++) s[i] = (char)('a' + ((seed + i) % 26));
    s[m] = (char)0;
    int r = strcmp(d, s);
    printf("R %d\n", r);
    return (r + 2) % 100000;
}
"#;

const STRTOK: &str = r#"
// strtok-alike tokenizer: every 5th byte is a delimiter; the scan
// trusts the caller's len, so len > cap reads past the buffer.
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    int m = len < cap ? len : cap;
    for (int i = 0; i < m; i++) {
        d[i] = (i % 5 == 4) ? ',' : (char)('a' + ((seed + i) % 26));
    }
    int toks = 0;
    int sum = 0;
    int cur = 0;
    for (int i = 0; i < len; i++) {
        char c = d[i];
        if (c == ',') { toks++; sum += cur; cur = 0; }
        else { cur = (cur * 31 + c) % 100000; }
    }
    sum = (sum + cur + toks * 1000) % 100000;
    printf("R %d %d\n", toks, sum);
    return sum;
}
"#;

const SPRINTF: &str = r#"
// sprintf-alike formatter: "DDDDD:name\0" written byte-by-byte.
// The value is pinned to 5 digits so the total is always len + 7
// bytes, and the stores are strictly sequential from d[0].
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    int value = 10000 + seed % 90000;
    int p = 0;
    int div = 10000;
    while (div > 0) {
        d[p] = (char)('0' + (value / div) % 10);
        p++;
        div = div / 10;
    }
    d[p] = ':';
    p++;
    for (int i = 0; i < len; i++) {
        d[p] = (char)('a' + ((seed + i * 5) % 26));
        p++;
    }
    d[p] = (char)0;
    printf("S %s\n", d);
    int sum = 0;
    for (int i = 0; i < p; i++) sum += d[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const OFF_BY_ONE: &str = r#"
// Classic off-by-one strcpy (BugBench polymorph-style): the loop uses
// `i <= len`, copying the NUL into slot len — one byte too many when
// the buffer holds exactly len bytes.
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    char s[80];
    for (int i = 0; i < len; i++) s[i] = (char)('a' + ((seed + i * 13) % 26));
    s[len] = (char)0;
    int i = 0;
    while (i <= len) { d[i] = s[i]; i++; }
    int sum = 0;
    for (int j = 0; j < len; j++) sum += d[j];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

const NEGINDEX: &str = r#"
// Negative-index underflow: a reverse scan anchored at the top of the
// buffer (`d[cap - 1 - i]`) trusts the caller's len, so len > cap walks
// below the object. The first out-of-bounds byte is base - 1 — an
// *underflow*, which exercises the `ptr < base` arm of the check (every
// other kernel overflows past `bound`).
int main(int cap, int len, int seed) {
    char* d = (char*)malloc(cap);
    printf("G %ld %d\n", (long)d, cap);
    for (int i = 0; i < cap; i++) d[i] = (char)('a' + ((seed + i) % 26));
    int sum = 0;
    for (int i = 0; i < len; i++) {
        sum = (sum + d[cap - 1 - i]) % 100000;
    }
    printf("R %d\n", sum);
    return sum;
}
"#;

const HEADER: &str = r#"
// Unchecked header copy (the nhttpd daemon pattern): a request-sized
// copy into a fixed char[16] stack buffer. cap is ignored; the G line
// reports the effective capacity 16.
int main(int cap, int len, int seed) {
    char buf[16];
    printf("G %ld %d\n", (long)buf, 16);
    for (int i = 0; i < len; i++) {
        buf[i] = (char)('a' + ((seed + i * 11) % 26));
    }
    int sum = 0;
    for (int i = 0; i < len && i < 16; i++) sum += buf[i];
    printf("R %d\n", sum % 100000);
    return sum % 100000;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_kernels_with_unique_names() {
        let kernels = all();
        assert_eq!(kernels.len(), 11);
        let mut names: Vec<&str> = kernels.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "kernel names must be unique");
    }

    #[test]
    fn sources_compile() {
        for k in all() {
            sb_cir::compile(k.source).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn safety_predicates_spot_checks() {
        let safe = |name: &str, cap, len| (by_name(name).unwrap().safe)(cap, len);
        // memcpy/memset/strncpy/strtok: len <= cap.
        for name in ["memcpy", "memset", "strncpy", "strtok"] {
            assert!(safe(name, 8, 8), "{name} len == cap is safe");
            assert!(!safe(name, 8, 9), "{name} len > cap overflows");
        }
        // strcpy and the off-by-one copy need room for the terminator.
        for name in ["strcpy", "strcpy_off_by_one"] {
            assert!(safe(name, 8, 7), "{name} len + 1 == cap is safe");
            assert!(!safe(name, 8, 8), "{name} len == cap overflows");
        }
        // strcmp needs a NUL inside the object.
        assert!(safe("strcmp", 8, 7));
        assert!(!safe("strcmp", 8, 8));
        // memmove shifts by 3.
        assert!(safe("memmove", 8, 5));
        assert!(safe("memmove", 8, 0));
        assert!(!safe("memmove", 8, 6));
        // sprintf writes len + 7 bytes.
        assert!(safe("sprintf", 16, 9));
        assert!(!safe("sprintf", 16, 10));
        // header ignores cap.
        assert!(safe("header", 1, 16));
        assert!(!safe("header", 48, 17));
        // negindex scans down from the top of the buffer.
        assert!(safe("negindex", 8, 8));
        assert!(!safe("negindex", 8, 9));
    }

    #[test]
    fn fault_addresses_point_outside_the_object() {
        for k in all() {
            let (cap, len) = (8, 40);
            assert!(!(k.safe)(cap, len), "{}: (8, 40) must overflow", k.name);
            let base = 0x1000;
            let fault = (k.fault_addr)(base, cap, len);
            if k.name == "negindex" {
                // The one underflow kernel: first bad byte is below base.
                assert_eq!(fault, base - 1);
            } else {
                assert!(
                    fault >= base + if k.name == "header" { 16 } else { cap as u64 },
                    "{}: fault {fault:#x} not past the object",
                    k.name
                );
            }
        }
    }
}
