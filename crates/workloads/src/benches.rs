//! The 15 evaluation benchmarks (Figure 1 / Figure 2).
//!
//! Structurally equivalent CIR-C kernels named after the paper's SPEC CPU
//! and Olden selections. Each kernel reproduces the *memory behaviour* of
//! its namesake — array codes for the SPEC side (go, lbm, hmmer, compress,
//! ijpeg, libquantum), pointer-chasing dynamic data structures for the
//! Olden side (bh, tsp, perimeter, health, bisort, mst, em3d, treeadd, and
//! the lisp interpreter li) — so the fraction of memory operations that
//! move pointers spans the same range the paper reports (near 0% on the
//! left of Figure 1 to well over 50% on the right).
//!
//! Floating-point originals (lbm, bh) are fixed-point integer versions:
//! the metadata frequency that drives the paper's results is unaffected.
//!
//! Every kernel's `main(n)` takes a scale parameter (0 = default) and
//! returns a checksum, so differential testing can compare protected and
//! unprotected runs.

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Paper benchmark name.
    pub name: &'static str,
    /// CIR-C source.
    pub source: &'static str,
    /// Default scale argument (passed to `main`).
    pub default_arg: i64,
    /// True for SPEC-suite namesakes (the dark bars in Figure 1).
    pub spec: bool,
    /// One-line description of the kernel.
    pub description: &'static str,
}

impl Workload {
    /// True for the pointer-dense side of Figure 1: the Olden
    /// pointer-chasing kernels plus `li` — SPEC's lisp interpreter,
    /// which the paper places among the pointer-heavy programs despite
    /// its suite. Scalar/array kernels (the left of Figure 1) return
    /// false. Check elimination and metadata traffic scale with this
    /// class, which the experiment narrative asserts on.
    pub fn pointer_dense(&self) -> bool {
        !self.spec || self.name == "li"
    }
}

/// All benchmarks in Figure 1's sorted order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "go",
            source: GO,
            default_arg: 0,
            spec: true,
            description: "Go board liberty counting with flood fill over int arrays",
        },
        Workload {
            name: "lbm",
            source: LBM,
            default_arg: 0,
            spec: true,
            description: "fixed-point lattice-Boltzmann streaming/collision over arrays",
        },
        Workload {
            name: "hmmer",
            source: HMMER,
            default_arg: 0,
            spec: true,
            description: "Viterbi-style dynamic programming over int matrices",
        },
        Workload {
            name: "compress",
            source: COMPRESS,
            default_arg: 0,
            spec: true,
            description: "LZW-style compression with array hash tables",
        },
        Workload {
            name: "ijpeg",
            source: IJPEG,
            default_arg: 0,
            spec: true,
            description: "8x8 integer DCT-like block transforms with quantization",
        },
        Workload {
            name: "bh",
            source: BH,
            default_arg: 0,
            spec: false,
            description: "Barnes-Hut-style quadtree n-body (fixed point)",
        },
        Workload {
            name: "tsp",
            source: TSP,
            default_arg: 0,
            spec: false,
            description: "nearest-neighbour tour over a linked list of cities",
        },
        Workload {
            name: "libquantum",
            source: LIBQUANTUM,
            default_arg: 0,
            spec: true,
            description: "sparse quantum register as a linked amplitude list",
        },
        Workload {
            name: "perimeter",
            source: PERIMETER,
            default_arg: 0,
            spec: false,
            description: "quadtree perimeter computation",
        },
        Workload {
            name: "health",
            source: HEALTH,
            default_arg: 0,
            spec: false,
            description: "hospital patient queues (linked lists) simulation",
        },
        Workload {
            name: "bisort",
            source: BISORT,
            default_arg: 0,
            spec: false,
            description: "binary-tree sort with subtree swaps",
        },
        Workload {
            name: "mst",
            source: MST,
            default_arg: 0,
            spec: false,
            description: "Prim MST over adjacency linked lists",
        },
        Workload {
            name: "li",
            source: LI,
            default_arg: 0,
            spec: true,
            description: "cons-cell s-expression interpreter",
        },
        Workload {
            name: "em3d",
            source: EM3D,
            default_arg: 0,
            spec: false,
            description: "electromagnetic propagation over bipartite node graph",
        },
        Workload {
            name: "treeadd",
            source: TREEADD,
            default_arg: 0,
            spec: false,
            description: "recursive binary-tree accumulation",
        },
    ]
}

/// Looks up a benchmark by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

const GO: &str = r#"
// go: 19x19 board, group/liberty counting with explicit-stack flood fill.
int board[361];
int mark[361];
int stack_[361];

int liberties(int pos) {
    int color = board[pos];
    int sp = 0;
    int libs = 0;
    for (int i = 0; i < 361; i++) mark[i] = 0;
    stack_[sp] = pos; sp++;
    mark[pos] = 1;
    while (sp > 0) {
        sp--;
        int p = stack_[sp];
        int row = p / 19;
        int col = p % 19;
        for (int d = 0; d < 4; d++) {
            int r = row; int c = col;
            if (d == 0) r--;
            if (d == 1) r++;
            if (d == 2) c--;
            if (d == 3) c++;
            if (r < 0 || r >= 19 || c < 0 || c >= 19) continue;
            int q = r * 19 + c;
            if (mark[q]) continue;
            mark[q] = 1;
            if (board[q] == 0) { libs++; }
            else if (board[q] == color) { stack_[sp] = q; sp++; }
        }
    }
    return libs;
}

int main(int n) {
    if (n == 0) n = 6;
    srand(42);
    long checksum = 0;
    for (int game = 0; game < n; game++) {
        for (int i = 0; i < 361; i++) board[i] = rand() % 3;
        for (int p = 0; p < 361; p++) {
            if (board[p] != 0) checksum += liberties(p);
        }
    }
    return (int)(checksum % 100000);
}
"#;

const LBM: &str = r#"
// lbm: 1D lattice Boltzmann in 16.16 fixed point, 3 velocity channels.
long f0[2048]; long f1[2048]; long f2[2048];
long t0[2048]; long t1[2048]; long t2[2048];

int main(int n) {
    if (n == 0) n = 12;
    int size = 2048;
    for (int i = 0; i < size; i++) {
        f0[i] = (4 << 16) / 9;
        f1[i] = (1 << 16) / 9;
        f2[i] = (1 << 16) / 9;
    }
    for (int step = 0; step < n; step++) {
        // Streaming.
        for (int i = 0; i < size; i++) {
            int left = i == 0 ? size - 1 : i - 1;
            int right = i == size - 1 ? 0 : i + 1;
            t0[i] = f0[i];
            t1[i] = f1[left];
            t2[i] = f2[right];
        }
        // Collision (BGK relaxation, omega = 1/2 in fixed point).
        for (int i = 0; i < size; i++) {
            long rho = t0[i] + t1[i] + t2[i];
            long u = t1[i] - t2[i];
            long eq0 = rho * 4 / 9;
            long eq1 = rho / 9 + u / 3;
            long eq2 = rho / 9 - u / 3;
            f0[i] = t0[i] + (eq0 - t0[i]) / 2;
            f1[i] = t1[i] + (eq1 - t1[i]) / 2;
            f2[i] = t2[i] + (eq2 - t2[i]) / 2;
        }
    }
    long sum = 0;
    for (int i = 0; i < size; i++) sum += f0[i] + f1[i] + f2[i];
    return (int)(sum % 100000);
}
"#;

const HMMER: &str = r#"
// hmmer: profile-HMM Viterbi over integer score matrices.
int match_[64][32];
int insert_[64][32];
int vmat[65][32];
int vins[65][32];

int main(int n) {
    if (n == 0) n = 40;
    srand(7);
    int states = 32;
    int len = 64;
    for (int i = 0; i < len; i++)
        for (int s = 0; s < states; s++) {
            match_[i][s] = rand() % 100 - 50;
            insert_[i][s] = rand() % 60 - 40;
        }
    long best_total = 0;
    for (int seq = 0; seq < n; seq++) {
        for (int s = 0; s < states; s++) { vmat[0][s] = 0; vins[0][s] = -1000; }
        for (int i = 1; i <= len; i++) {
            for (int s = 0; s < states; s++) {
                int prev = s == 0 ? states - 1 : s - 1;
                int a = vmat[i-1][prev] + match_[i-1][s];
                int b = vins[i-1][s] + insert_[i-1][s];
                vmat[i][s] = a > b ? a : b;
                int c = vmat[i-1][s] - 3;
                int d = vins[i-1][s] - 1;
                vins[i][s] = c > d ? c : d;
            }
        }
        int best = -1000000;
        for (int s = 0; s < states; s++) if (vmat[len][s] > best) best = vmat[len][s];
        best_total += best + seq;
    }
    return (int)(best_total % 100000);
}
"#;

const COMPRESS: &str = r#"
// compress: LZW-style coder with open-addressed code table in arrays.
unsigned char input[4096];
int table_prefix[8192];
int table_suffix[8192];
int table_code[8192];

int main(int n) {
    if (n == 0) n = 6;
    srand(12345);
    int len = 4096;
    long out_checksum = 0;
    for (int round = 0; round < n; round++) {
        for (int i = 0; i < len; i++) input[i] = (unsigned char)(rand() % 17 + 'a');
        for (int i = 0; i < 8192; i++) { table_prefix[i] = -1; table_code[i] = -1; }
        int next_code = 256;
        int w = input[0];
        for (int i = 1; i < len; i++) {
            int k = input[i];
            // Hash probe for (w, k).
            int h = ((w << 5) ^ k) & 8191;
            int found = -1;
            while (table_prefix[h] != -1) {
                if (table_prefix[h] == w && table_suffix[h] == k) { found = table_code[h]; break; }
                h = (h + 1) & 8191;
            }
            if (found != -1) {
                w = found;
            } else {
                out_checksum = out_checksum * 31 + w;
                if (next_code < 8192) {
                    table_prefix[h] = w;
                    table_suffix[h] = k;
                    table_code[h] = next_code;
                    next_code++;
                }
                w = k;
            }
        }
        out_checksum = out_checksum * 31 + w;
    }
    return (int)(out_checksum % 100000);
}
"#;

const IJPEG: &str = r#"
// ijpeg: integer DCT-ish transform + quantization over 8x8 blocks.
int image[64 * 64];
int quant[64];
int block[64];
int coef[64];

int main(int n) {
    if (n == 0) n = 10;
    srand(99);
    for (int i = 0; i < 64 * 64; i++) image[i] = rand() % 256;
    for (int i = 0; i < 64; i++) quant[i] = 1 + (i / 8) + (i % 8);
    long checksum = 0;
    for (int pass = 0; pass < n; pass++) {
        for (int by = 0; by < 8; by++) {
            for (int bx = 0; bx < 8; bx++) {
                for (int y = 0; y < 8; y++)
                    for (int x = 0; x < 8; x++)
                        block[y * 8 + x] = image[(by * 8 + y) * 64 + bx * 8 + x] - 128;
                // Row pass: butterfly-style transform.
                for (int y = 0; y < 8; y++) {
                    for (int u = 0; u < 8; u++) {
                        int acc = 0;
                        for (int x = 0; x < 8; x++) {
                            int c = ((u * (2 * x + 1)) % 32) - 16;
                            acc += block[y * 8 + x] * c;
                        }
                        coef[y * 8 + u] = acc >> 4;
                    }
                    for (int u = 0; u < 8; u++) block[y * 8 + u] = coef[y * 8 + u];
                }
                // Quantize.
                for (int i = 0; i < 64; i++) checksum += block[i] / quant[i];
            }
        }
    }
    return (int)(checksum % 100000);
}
"#;

const BH: &str = r#"
// bh: Barnes-Hut-style quadtree gravity, 16.16 fixed point.
struct body { long x; long y; long mass; long fx; long fy; };
struct cell {
    long cx; long cy; long mass; long size;
    struct cell* child[4];
    struct body* leaf;
};
struct body bodies[128];

struct cell* new_cell(long cx, long cy, long size) {
    struct cell* c = (struct cell*)malloc(sizeof(struct cell));
    c->cx = cx; c->cy = cy; c->mass = 0; c->size = size;
    for (int i = 0; i < 4; i++) c->child[i] = NULL;
    c->leaf = NULL;
    return c;
}

void insert(struct cell* c, struct body* b) {
    c->mass += b->mass;
    if (c->size <= 2) {
        c->leaf = b; // bucket of one; collisions overwrite (toy model)
        return;
    }
    int q = 0;
    long half = c->size / 2;
    long nx = c->cx - half / 2;
    long ny = c->cy - half / 2;
    if (b->x >= c->cx) { q += 1; nx = c->cx + half / 2; }
    if (b->y >= c->cy) { q += 2; ny = c->cy + half / 2; }
    if (c->child[q] == NULL) c->child[q] = new_cell(nx, ny, half);
    insert(c->child[q], b);
}

long force(struct cell* c, struct body* b) {
    if (c == NULL || c->mass == 0) return 0;
    long dx = c->cx - b->x;
    long dy = c->cy - b->y;
    long dist2 = dx * dx + dy * dy + 16;
    if (c->size <= 2 || c->size * c->size * 4 < dist2) {
        return (c->mass * 256) / dist2;
    }
    long f = 0;
    for (int i = 0; i < 4; i++) f += force(c->child[i], b);
    return f;
}

int main(int n) {
    if (n == 0) n = 6;
    srand(5);
    int nb = 128;
    for (int i = 0; i < nb; i++) {
        bodies[i].x = rand() % 1024;
        bodies[i].y = rand() % 1024;
        bodies[i].mass = 1 + rand() % 15;
    }
    long checksum = 0;
    for (int step = 0; step < n; step++) {
        struct cell* root = new_cell(512, 512, 1024);
        for (int i = 0; i < nb; i++) insert(root, &bodies[i]);
        for (int i = 0; i < nb; i++) {
            long f = force(root, &bodies[i]);
            bodies[i].x = (bodies[i].x + f) % 1024;
            checksum += f;
        }
    }
    return (int)(checksum % 100000);
}
"#;

const TSP: &str = r#"
// tsp: nearest-neighbour tour over a linked list of cities.
struct city { long x; long y; int visited; struct city* next; };

int main(int n) {
    if (n == 0) n = 180;
    srand(17);
    struct city* head = NULL;
    for (int i = 0; i < n; i++) {
        struct city* c = (struct city*)malloc(sizeof(struct city));
        c->x = rand() % 10000;
        c->y = rand() % 10000;
        c->visited = 0;
        c->next = head;
        head = c;
    }
    struct city* cur = head;
    cur->visited = 1;
    long tour = 0;
    for (int step = 1; step < n; step++) {
        struct city* best = NULL;
        long best_d = 0x7fffffffffffffffl;
        for (struct city* p = head; p != NULL; p = p->next) {
            if (p->visited) continue;
            long dx = p->x - cur->x;
            long dy = p->y - cur->y;
            long d = dx * dx + dy * dy;
            if (d < best_d) { best_d = d; best = p; }
        }
        best->visited = 1;
        tour += best_d % 1000;
        cur = best;
    }
    return (int)(tour % 100000);
}
"#;

const LIBQUANTUM: &str = r#"
// libquantum: sparse quantum register as a linked list of nonzero
// amplitudes (16.16 fixed point), Hadamard-like and phase gates.
struct amp { long re; long im; int basis; struct amp* next; };

struct amp* new_amp(long re, long im, int basis, struct amp* next) {
    struct amp* a = (struct amp*)malloc(sizeof(struct amp));
    a->re = re; a->im = im; a->basis = basis; a->next = next;
    return a;
}

struct amp* find(struct amp* reg, int basis) {
    for (struct amp* p = reg; p != NULL; p = p->next)
        if (p->basis == basis) return p;
    return NULL;
}

long hist[64];

int main(int n) {
    if (n == 0) n = 7;
    int qubits = 6;
    struct amp* reg = new_amp(1 << 16, 0, 0, NULL);
    long checksum = 0;
    for (int round = 0; round < n; round++) {
        for (int q = 0; q < qubits; q++) {
            // "Hadamard" on qubit q: split every amplitude.
            struct amp* nreg = NULL;
            for (struct amp* p = reg; p != NULL; p = p->next) {
                int flipped = p->basis ^ (1 << q);
                long hre = p->re * 46341 >> 16; // 1/sqrt2 in 16.16
                long him = p->im * 46341 >> 16;
                struct amp* t = find(nreg, p->basis);
                if (t == NULL) { nreg = new_amp(0, 0, p->basis, nreg); t = nreg; }
                int sign = (p->basis & (1 << q)) ? -1 : 1;
                t->re += sign * hre; t->im += sign * him;
                t = find(nreg, flipped);
                if (t == NULL) { nreg = new_amp(0, 0, flipped, nreg); t = nreg; }
                t->re += hre; t->im += him;
            }
            // Free the old register and prune zeros.
            while (reg != NULL) { struct amp* d = reg; reg = reg->next; free(d); }
            struct amp* pruned = NULL;
            while (nreg != NULL) {
                struct amp* next = nreg->next;
                if (nreg->re != 0 || nreg->im != 0) { nreg->next = pruned; pruned = nreg; }
                else free(nreg);
                nreg = next;
            }
            reg = pruned;
        }
        for (struct amp* p = reg; p != NULL; p = p->next) {
            long prob = (p->re * p->re + p->im * p->im) >> 16;
            checksum += prob;
            hist[p->basis & 63] += prob;
            hist[(p->basis >> 2) & 63] += 1;
        }
        for (int i = 0; i < 64; i++) checksum = (checksum + hist[i]) % 1000003;
    }
    return (int)(checksum % 100000);
}
"#;

const PERIMETER: &str = r#"
// perimeter: quadtree over a synthetic image; perimeter of the black
// region, computed by recursive edge accounting.
struct quad { int color; long x; long y; long size; long area; struct quad* child[4]; };
int lut[256];

struct quad* build(int depth, long x, long y, long size, int seed) {
    struct quad* q = (struct quad*)malloc(sizeof(struct quad));
    for (int i = 0; i < 4; i++) q->child[i] = NULL;
    q->x = x; q->y = y; q->size = size; q->area = size * size;
    if (depth == 0) {
        // Pseudo-pattern: blobby circle-ish region.
        long cx = x + size / 2 - 512;
        long cy = y + size / 2 - 512;
        long r2 = cx * cx + cy * cy;
        int bias = lut[(cx & 15) * 16 + (cy & 15)] + lut[(int)(r2 & 255)] + lut[(int)(size & 255)];
        q->color = r2 < 200000 + (seed % 7) * 9000 + bias % 3 ? 1 : 0;
        return q;
    }
    long half = size / 2;
    q->child[0] = build(depth - 1, x, y, half, seed + 1);
    q->child[1] = build(depth - 1, x + half, y, half, seed + 2);
    q->child[2] = build(depth - 1, x, y + half, half, seed + 3);
    q->child[3] = build(depth - 1, x + half, y + half, half, seed + 5);
    // Merge uniform children.
    int c0 = q->child[0]->color;
    int uniform = 1;
    for (int i = 0; i < 4; i++) {
        struct quad* k = q->child[i];
        if (k->child[0] != NULL || k->color != c0) uniform = 0;
    }
    if (uniform) {
        for (int i = 0; i < 4; i++) { free(q->child[i]); q->child[i] = NULL; }
        q->color = c0;
    } else {
        q->color = 2; // grey
    }
    return q;
}

// Count black leaves and exposed edges along one axis by sampling.
long edges(struct quad* q, long size) {
    if (q->child[0] == NULL) {
        // Geometric bookkeeping: int fields keep the memory mix realistic.
        long contrib = q->color == 1 ? q->size * 4 : 0;
        if (q->x == 0 || q->y == 0) contrib += q->size;
        if (q->area < 64) contrib -= q->size / 2;
        contrib += lut[(int)(q->x & 255)] - lut[(int)(q->y & 255)];
        return contrib;
    }
    long p = 0;
    for (int i = 0; i < 4; i++) p += edges(q->child[i], size / 2);
    // Shared internal edges between black siblings cancel (approximation
    // faithful to the pointer behaviour, not the exact geometry).
    struct quad* a = q->child[0];
    struct quad* b = q->child[1];
    struct quad* c = q->child[2];
    struct quad* d = q->child[3];
    if (a->color == 1 && b->color == 1) p -= size;
    if (c->color == 1 && d->color == 1) p -= size;
    if (a->color == 1 && c->color == 1) p -= size;
    if (b->color == 1 && d->color == 1) p -= size;
    p += (a->area + d->area - b->area - c->area) / 4096;
    p += (q->x ^ q->y) % 3;
    p -= q->size % 3;
    p += q->area % 2;
    return p;
}

void destroy(struct quad* q) {
    if (q == NULL) return;
    for (int i = 0; i < 4; i++) destroy(q->child[i]);
    free(q);
}

int main(int n) {
    if (n == 0) n = 10;
    for (int i = 0; i < 256; i++) lut[i] = (i * 7 + 3) % 5;
    long checksum = 0;
    for (int i = 0; i < n; i++) {
        struct quad* root = build(5, 0, 0, 1024, i);
        checksum += edges(root, 1024);
        destroy(root);
    }
    return (int)(checksum % 100000);
}
"#;

const HEALTH: &str = r#"
// health: hierarchy of villages with patient queues (linked lists).
struct patient { int id; int time; int hops; struct patient* next; };
struct village {
    struct village* parent;
    struct village* kids[4];
    struct patient* waiting;
    struct patient* treated;
    int level;
    int seed;
    int arrivals;
    int referrals;
    int treated_count;
};

struct village* build(int level, struct village* parent, int seed) {
    struct village* v = (struct village*)malloc(sizeof(struct village));
    v->parent = parent;
    v->waiting = NULL;
    v->treated = NULL;
    v->level = level;
    v->seed = seed;
    v->arrivals = 0;
    v->referrals = 0;
    v->treated_count = 0;
    for (int i = 0; i < 4; i++)
        v->kids[i] = level > 0 ? build(level - 1, v, seed * 4 + i + 1) : NULL;
    return v;
}

int next_id = 0;

void step(struct village* v) {
    if (v == NULL) return;
    for (int i = 0; i < 4; i++) step(v->kids[i]);
    // New patients arrive at leaves.
    if (v->level == 0 && (rand() % 3) == 0) {
        struct patient* p = (struct patient*)malloc(sizeof(struct patient));
        p->id = next_id++;
        p->time = 0;
        p->hops = 0;
        p->next = v->waiting;
        v->waiting = p;
        v->arrivals++;
    }
    // Treat or refer the head of the queue.
    struct patient* p = v->waiting;
    if (p != NULL) {
        v->waiting = p->next;
        p->time += v->level + 1;
        if (rand() % 10 < 7 || v->parent == NULL) {
            p->next = v->treated;
            v->treated = p;
            v->treated_count++;
        } else {
            p->hops++;
            p->next = v->parent->waiting;
            v->parent->waiting = p;
            v->referrals++;
        }
    }
    v->seed = v->seed * 1103515245 + 12345;
}

long tally(struct village* v) {
    if (v == NULL) return 0;
    long s = v->arrivals * 3 + v->referrals * 5 + v->treated_count;
    for (int i = 0; i < 4; i++) s += tally(v->kids[i]);
    for (struct patient* p = v->treated; p != NULL; p = p->next)
        s += p->time + p->hops * 10 + (p->id & 7);
    return s;
}

int main(int n) {
    if (n == 0) n = 30;
    srand(1234);
    struct village* root = build(3, NULL, 1);
    for (int t = 0; t < n; t++) step(root);
    return (int)(tally(root) % 100000);
}
"#;

const BISORT: &str = r#"
// bisort: binary tree sort with recursive subtree value swaps.
struct tnode { int v; int weight; struct tnode* l; struct tnode* r; };

struct tnode* insert_node(struct tnode* t, int v) {
    if (t == NULL) {
        struct tnode* n = (struct tnode*)malloc(sizeof(struct tnode));
        n->v = v; n->weight = v % 13; n->l = NULL; n->r = NULL;
        return n;
    }
    if (v < t->v) t->l = insert_node(t->l, v);
    else t->r = insert_node(t->r, v);
    return t;
}

// Bitonic-flavoured swap: exchange min/max along the spine.
int swap_dirs(struct tnode* t, int dir) {
    if (t == NULL) return 0;
    int count = 0;
    struct tnode* l = t->l;
    struct tnode* r = t->r;
    if (l != NULL && r != NULL) {
        int lv = l->v;
        int rv = r->v;
        if ((dir == 0 && lv > rv) || (dir == 1 && lv < rv)) {
            l->v = rv;
            r->v = lv;
            int w = l->weight;
            l->weight = r->weight;
            r->weight = w;
            count++;
        }
    }
    count += swap_dirs(l, dir);
    count += swap_dirs(r, 1 - dir);
    return count;
}

long inorder(struct tnode* t, long acc) {
    if (t == NULL) return acc;
    acc = inorder(t->l, acc);
    acc = acc * 2 + (t->v % 7) + t->weight;
    acc = acc % 1000003;
    return inorder(t->r, acc);
}

int main(int n) {
    if (n == 0) n = 300;
    srand(3);
    struct tnode* root = NULL;
    for (int i = 0; i < n; i++) root = insert_node(root, rand() % 10000);
    long checksum = 0;
    for (int pass = 0; pass < 6; pass++) {
        checksum += swap_dirs(root, pass % 2);
        checksum += inorder(root, 0);
    }
    return (int)(checksum % 100000);
}
"#;

const MST: &str = r#"
// mst: Prim's algorithm over linked vertices and adjacency lists of
// vertex pointers (the Olden version keys hash tables by node pointer).
struct vertex;
struct edge { struct vertex* to; int w; struct edge* next; };
struct vertex { struct edge* adj; struct vertex* next; int in_tree; int key; };

struct vertex* vlist = NULL;

void add_edge(struct vertex* a, struct vertex* b, int w) {
    struct edge* e = (struct edge*)malloc(sizeof(struct edge));
    e->to = b; e->w = w; e->next = a->adj; a->adj = e;
    struct edge* f = (struct edge*)malloc(sizeof(struct edge));
    f->to = a; f->w = w; f->next = b->adj; b->adj = f;
}

struct vertex* pick(int idx) {
    struct vertex* v = vlist;
    while (idx > 0) { v = v->next; idx--; }
    return v;
}

int main(int n) {
    if (n == 0) n = 120;
    srand(21);
    for (int i = 0; i < n; i++) {
        struct vertex* v = (struct vertex*)malloc(sizeof(struct vertex));
        v->adj = NULL; v->in_tree = 0; v->key = 1000000;
        v->next = vlist; vlist = v;
    }
    for (int i = 1; i < n; i++) {
        struct vertex* a = pick(i);
        add_edge(a, pick(rand() % i), 1 + rand() % 100);   // spanning backbone
        add_edge(a, pick(rand() % n), 1 + rand() % 100);   // extra edges
    }
    vlist->key = 0;
    long total = 0;
    for (int it = 0; it < n; it++) {
        struct vertex* best = NULL;
        for (struct vertex* v = vlist; v != NULL; v = v->next)
            if (!v->in_tree && (best == NULL || v->key < best->key)) best = v;
        best->in_tree = 1;
        total += best->key;
        for (struct edge* e = best->adj; e != NULL; e = e->next) {
            struct vertex* t = e->to;
            if (!t->in_tree && e->w < t->key) t->key = e->w;
        }
    }
    return (int)(total % 100000);
}
"#;

const LI: &str = r#"
// li: a miniature lisp — cons cells, arithmetic s-expressions, recursive
// evaluation, mark-free arena reuse via explicit free lists.
struct cell { int tag; long num; struct cell* car; struct cell* cdr; };
// tag: 0 = number, 1 = cons, 2 = op-add, 3 = op-mul, 4 = op-sub

struct cell* freelist = NULL;

struct cell* alloc_cell(void) {
    if (freelist != NULL) {
        struct cell* c = freelist;
        freelist = c->cdr;
        return c;
    }
    return (struct cell*)malloc(sizeof(struct cell));
}

void release(struct cell* c) {
    if (c == NULL) return;
    if (c->tag != 0) { release(c->car); release(c->cdr); }
    c->cdr = freelist;
    c->tag = 1;
    freelist = c;
}

struct cell* num(long v) {
    struct cell* c = alloc_cell();
    c->tag = 0; c->num = v; c->car = NULL; c->cdr = NULL;
    return c;
}

struct cell* op(int tag, struct cell* a, struct cell* b) {
    struct cell* c = alloc_cell();
    c->tag = tag; c->num = 0; c->car = a; c->cdr = b;
    return c;
}

// Build a random expression tree of the given depth.
struct cell* gen(int depth) {
    if (depth == 0) return num(rand() % 10 + 1);
    int t = 2 + rand() % 3;
    return op(t, gen(depth - 1), gen(depth - 1));
}

long opcount[8];

long eval(struct cell* c) {
    if (c->tag == 0) return c->num;
    long a = eval(c->car);
    long b = eval(c->cdr);
    opcount[c->tag]++;
    if (c->tag == 2) return (a + b) % 1000003;
    if (c->tag == 3) return (a * b) % 1000003;
    return (a - b) % 1000003;
}

int main(int n) {
    if (n == 0) n = 60;
    srand(8);
    long checksum = 0;
    for (int i = 0; i < n; i++) {
        struct cell* e = gen(7);
        checksum = (checksum * 31 + eval(e)) % 1000003;
        release(e);
    }
    for (int i = 0; i < 8; i++) checksum += opcount[i] % 97;
    return (int)(checksum % 100000);
}
"#;

const EM3D: &str = r#"
// em3d: bipartite E/H node graph; each node holds a pointer array to its
// dependencies and updates its value from theirs.
struct enode {
    long value;
    struct enode* next;
    struct enode** deps;
    long* coeffs;
    int degree;
};

struct enode* make_list(int n, int seed) {
    struct enode* head = NULL;
    for (int i = 0; i < n; i++) {
        struct enode* e = (struct enode*)malloc(sizeof(struct enode));
        e->value = (seed * 37 + i * 11) % 1000;
        e->next = head;
        e->deps = NULL;
        e->coeffs = NULL;
        e->degree = 0;
        head = e;
    }
    return head;
}

struct enode* nth(struct enode* l, int i) {
    while (i > 0) { l = l->next; i--; }
    return l;
}

void wire(struct enode* from, struct enode* to_list, int count, int degree) {
    for (struct enode* e = from; e != NULL; e = e->next) {
        e->degree = degree;
        e->deps = (struct enode**)malloc(degree * sizeof(struct enode*));
        e->coeffs = (long*)malloc(degree * sizeof(long));
        for (int d = 0; d < degree; d++) {
            e->deps[d] = nth(to_list, rand() % count);
            e->coeffs[d] = rand() % 7 + 1;
        }
    }
}

void relax(struct enode* list) {
    for (struct enode* e = list; e != NULL; e = e->next) {
        long acc = e->value;
        for (int d = 0; d < e->degree; d++)
            acc -= (e->deps[d]->value * e->coeffs[d]) / 8;
        e->value = acc % 100000;
    }
}

int main(int n) {
    if (n == 0) n = 12;
    srand(31);
    int count = 64;
    struct enode* enodes = make_list(count, 1);
    struct enode* hnodes = make_list(count, 2);
    wire(enodes, hnodes, count, 4);
    wire(hnodes, enodes, count, 4);
    for (int t = 0; t < n; t++) { relax(enodes); relax(hnodes); }
    long checksum = 0;
    for (struct enode* e = enodes; e != NULL; e = e->next) checksum += e->value;
    if (checksum < 0) checksum = -checksum;
    return (int)(checksum % 100000);
}
"#;

const TREEADD: &str = r#"
// treeadd: recursive binary-tree accumulation (the canonical Olden
// pointer benchmark).
struct tree { int val; struct tree* left; struct tree* right; };

struct tree* build(int depth) {
    struct tree* t = (struct tree*)malloc(sizeof(struct tree));
    t->val = 1;
    if (depth <= 1) { t->left = NULL; t->right = NULL; return t; }
    t->left = build(depth - 1);
    t->right = build(depth - 1);
    return t;
}

int sum(struct tree* t) {
    if (t == NULL) return 0;
    return t->val + sum(t->left) + sum(t->right);
}

int main(int n) {
    if (n == 0) n = 11;
    struct tree* root = build(n);
    int total = 0;
    for (int i = 0; i < 8; i++) total = sum(root);
    return total; // 2^n - 1
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks_in_figure1_order() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "go",
                "lbm",
                "hmmer",
                "compress",
                "ijpeg",
                "bh",
                "tsp",
                "libquantum",
                "perimeter",
                "health",
                "bisort",
                "mst",
                "li",
                "em3d",
                "treeadd"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("treeadd").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn all_sources_compile() {
        for w in all() {
            sb_cir::compile(w.source)
                .unwrap_or_else(|e| panic!("benchmark {} does not compile: {e}", w.name));
        }
    }
}
