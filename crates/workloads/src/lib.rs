//! # sb-workloads — programs the evaluation runs
//!
//! CIR-C sources for every program the paper's evaluation needs: the 15
//! [benchmarks](benches) of Figures 1–2, the BugBench-style
//! [buggy programs](bugbench) of Table 4, the Wilander & Kamkar
//! [attack suite](attacks) of Table 3, the two network
//! [daemons](mod@daemons) of the §6.4 compatibility case study, and
//! deterministic request [streams] that drive those daemons through
//! the fleet-serving harness, plus the [libc] kernel corpus the
//! differential conformance fuzzer replays across every metadata
//! facility and execution lane.

pub mod attacks;
pub mod benches;
pub mod bugbench;
pub mod daemons;
pub mod libc;
pub mod streams;

pub use benches::{all as all_benchmarks, by_name as benchmark_by_name, Workload};
pub use libc::{all as all_libc_kernels, by_name as libc_kernel_by_name, LibcKernel};
pub use streams::{mixed_traffic, nhttpd_batches, MIXED_HANDLER};
