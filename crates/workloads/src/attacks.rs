//! The Wilander & Kamkar synthetic attack suite (Table 3).
//!
//! Eighteen buffer-overflow attacks organized exactly as the paper's
//! Table 3: {direct overflow, overflow-a-pointer-then-redirect} ×
//! {stack, heap/BSS/data} × {return address, old base pointer, function
//! pointer (variable/parameter), longjmp buffer (variable/parameter)}.
//!
//! Because the VM spills return tokens and saved frame pointers into
//! simulated memory (and `setjmp` writes live jump tokens), these attacks
//! *really divert control* when no protection is installed: the attacker
//! payload runs and the outcome is `Hijacked` or `Exited(66)`. Under
//! SoftBound — full or store-only — every one of them aborts at the
//! out-of-bounds store, reproducing the all-"yes" column of Table 3.
//!
//! Frame-layout facts the attack sources rely on (see `sb-vm`):
//! allocas in declaration order from the frame base (plain locals first,
//! then spilled parameters), then the saved frame pointer (8 bytes,
//! 8-aligned) and the return token (8 bytes).

/// Overflow technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Contiguous overflow all the way to the target.
    Direct,
    /// Overflow a data pointer, then write through it to the target.
    PointerRedirect,
}

/// Where the overflowed buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Location {
    /// Stack frame.
    Stack,
    /// Heap, BSS or data segment.
    HeapBssData,
}

/// What the attack corrupts to seize control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// The spilled return token ("return address").
    ReturnAddr,
    /// The saved frame pointer ("old base pointer").
    BasePtr,
    /// A function-pointer local variable.
    FnPtrVar,
    /// A function-pointer parameter.
    FnPtrParam,
    /// A longjmp buffer local/global variable.
    JmpBufVar,
    /// A longjmp buffer function parameter.
    JmpBufParam,
}

impl Target {
    /// Table 3 row label.
    pub fn label(self) -> &'static str {
        match self {
            Target::ReturnAddr => "Return address",
            Target::BasePtr => "Old base pointer",
            Target::FnPtrVar => "Function ptr local variable",
            Target::FnPtrParam => "Function ptr parameter",
            Target::JmpBufVar => "Longjmp buffer local variable",
            Target::JmpBufParam => "Longjmp buffer function parameter",
        }
    }
}

/// One attack program.
#[derive(Debug, Clone, Copy)]
pub struct Attack {
    /// Index (1-based, Table 3 order).
    pub id: usize,
    /// Technique.
    pub technique: Technique,
    /// Buffer location.
    pub location: Location,
    /// Attack target.
    pub target: Target,
    /// CIR-C source; `main` runs the attack.
    pub source: &'static str,
}

/// All 18 attacks in Table 3 order.
pub fn all() -> Vec<Attack> {
    use Location::*;
    use Target::*;
    use Technique::*;
    let mut v = Vec::new();
    let mut add = |technique, location, target, source| {
        v.push(Attack {
            id: v.len() + 1,
            technique,
            location,
            target,
            source,
        });
    };
    // Buffer overflow on stack all the way to the target.
    add(Direct, Stack, ReturnAddr, S1_RET);
    add(Direct, Stack, BasePtr, S2_BP);
    add(Direct, Stack, FnPtrVar, S3_FNVAR);
    add(Direct, Stack, FnPtrParam, S4_FNPARAM);
    add(Direct, Stack, JmpBufVar, S5_JBVAR);
    add(Direct, Stack, JmpBufParam, S6_JBPARAM);
    // Buffer overflow on heap/BSS/data all the way to the target.
    add(Direct, HeapBssData, FnPtrVar, H7_FNPTR);
    add(Direct, HeapBssData, JmpBufVar, H8_JB);
    // Buffer overflow of a pointer on stack, then pointing at the target.
    add(PointerRedirect, Stack, ReturnAddr, P9_RET);
    add(PointerRedirect, Stack, BasePtr, P10_BP);
    add(PointerRedirect, Stack, FnPtrVar, P11_FNVAR);
    add(PointerRedirect, Stack, FnPtrParam, P12_FNPARAM);
    add(PointerRedirect, Stack, JmpBufVar, P13_JBVAR);
    add(PointerRedirect, Stack, JmpBufParam, P14_JBPARAM);
    // Buffer overflow of a pointer on heap/BSS, then pointing at the target.
    add(PointerRedirect, HeapBssData, ReturnAddr, P15_RET);
    add(PointerRedirect, HeapBssData, BasePtr, P16_BP);
    add(PointerRedirect, HeapBssData, FnPtrVar, P17_FNPTR);
    add(PointerRedirect, HeapBssData, JmpBufVar, P18_JB);
    v
}

const S1_RET: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    long buf[2];
    // frame: buf@0..16, saved fp@16, ret token@24
    long* p = buf;
    for (int i = 0; i < 4; i++) p[i] = target;
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const S2_BP: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    long buf[4];
    // frame: buf@0..32, saved fp@32, ret token@40
    buf[1] = 0;              // fake frame: [fake fp][fake ret]
    buf[2] = target;
    long* p = buf;
    p[4] = (long)&buf[1];    // overwrite saved fp -> fake frame
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const S3_FNVAR: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
void vulnerable(long target) {
    char buf[16];
    void (*handler)(void) = safe;
    void (**force)(void) = &handler;   // keep handler in memory
    long* p = (long*)buf;
    p[2] = target;                      // buf@0..16, handler@16
    handler();
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const S4_FNPARAM: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
void vulnerable(void (*handler)(void), long target) {
    char buf[16];
    void (**force)(void) = &handler;   // spill the parameter
    long* p = (long*)buf;
    p[2] = target;                      // buf@0..16, handler spill@16
    handler();
}
int main() { vulnerable(safe, (long)&attacker); return 0; }
"#;

const S5_JBVAR: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    char buf[8];
    long jb[8];
    if (setjmp(jb) != 0) { return; }
    long* p = (long*)buf;
    p[1] = target;                      // buf@0..8, jb[0]@8
    longjmp(jb, 1);
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const S6_JBPARAM: &str = r#"
void attacker(void) { exit(66); }
long fakebuf[8];
void vulnerable(long* jb, long target) {
    char buf[16];
    long** force = &jb;                 // spill the parameter
    fakebuf[0] = target;
    long* p = (long*)buf;
    p[2] = (long)fakebuf;               // jb spill@16 := fake buffer
    longjmp(jb, 1);
}
int main() {
    long jb[8];
    if (setjmp(jb) != 0) return 0;
    vulnerable(jb, (long)&attacker);
    return 0;
}
"#;

const H7_FNPTR: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
char gbuf[16];
void (*ghandler)(void) = safe;
int main() {
    long* p = (long*)gbuf;
    p[2] = (long)&attacker;             // gbuf@G..16, ghandler@G+16
    ghandler();
    return 0;
}
"#;

const H8_JB: &str = r#"
void attacker(void) { exit(66); }
char gbuf[8];
long gjb[8];
int main() {
    if (setjmp(gjb) != 0) return 0;
    long* p = (long*)gbuf;
    p[1] = (long)&attacker;             // gbuf@G..8, gjb[0]@G+8
    longjmp(gjb, 1);
    return 0;
}
"#;

const P9_RET: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    long buf[2];
    long* victim[1];
    // frame: buf@0..16, victim@16..24, fp@24, token@32
    victim[0] = (long*)&buf[0];
    long* p = buf;
    p[2] = (long)&buf[0] + 32;          // victim := &ret token
    *victim[0] = target;
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P10_BP: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    long buf[2];
    long* victim[1];
    long fake[2];
    // frame: buf@0..16, victim@16..24, fake@24..40, fp@40, token@48
    victim[0] = (long*)&buf[0];
    fake[0] = 0;
    fake[1] = target;
    long* p = buf;
    p[2] = (long)&buf[0] + 40;          // victim := &saved fp
    *victim[0] = (long)&fake[0];
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P11_FNVAR: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
void vulnerable(long target) {
    long buf[2];
    long* victim[1];
    void (*handler)(void) = safe;
    void (**force)(void) = &handler;
    // frame: buf@0..16, victim@16..24, handler@24..32
    victim[0] = (long*)&buf[0];
    long* p = buf;
    p[2] = (long)&buf[0] + 24;          // victim := &handler
    *victim[0] = target;
    handler();
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P12_FNPARAM: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
void vulnerable(void (*handler)(void), long target) {
    long buf[2];
    long* victim[1];
    void (**force)(void) = &handler;
    // frame: buf@0..16, victim@16..24, handler spill@24..32
    victim[0] = (long*)&buf[0];
    long* p = buf;
    p[2] = (long)&buf[0] + 24;          // victim := &handler spill
    *victim[0] = target;
    handler();
}
int main() { vulnerable(safe, (long)&attacker); return 0; }
"#;

const P13_JBVAR: &str = r#"
void attacker(void) { exit(66); }
void vulnerable(long target) {
    long buf[2];
    long* victim[1];
    long jb[8];
    // frame: buf@0..16, victim@16..24, jb@24..88
    if (setjmp(jb) != 0) return;
    victim[0] = (long*)&buf[0];
    long* p = buf;
    p[2] = (long)&buf[0] + 24;          // victim := &jb[0]
    *victim[0] = target;
    longjmp(jb, 1);
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P14_JBPARAM: &str = r#"
void attacker(void) { exit(66); }
long fakebuf[8];
void vulnerable(long* jb, long target) {
    long buf[2];
    long* victim[1];
    long** force = &jb;
    // frame: buf@0..16, victim@16..24, jb spill@24..32
    fakebuf[0] = target;
    victim[0] = (long*)&buf[0];
    long* p = buf;
    p[2] = (long)&buf[0] + 24;          // victim := &jb spill
    *victim[0] = (long)fakebuf;
    longjmp(jb, 1);
}
int main() {
    long jb[8];
    if (setjmp(jb) != 0) return 0;
    vulnerable(jb, (long)&attacker);
    return 0;
}
"#;

const P15_RET: &str = r#"
void attacker(void) { exit(66); }
struct chunk { char data[16]; long* fwd; };
void vulnerable(long target) {
    long anchor[1];
    // frame: anchor@0..8, fp@8, token@16
    struct chunk* c = (struct chunk*)malloc(sizeof(struct chunk));
    c->fwd = (long*)&anchor[0];
    long* p = (long*)c->data;
    p[2] = (long)&anchor[0] + 16;       // heap overflow: fwd := &token
    *(c->fwd) = target;
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P16_BP: &str = r#"
void attacker(void) { exit(66); }
long fake[2];
struct chunk { char data[16]; long* fwd; };
void vulnerable(long target) {
    long anchor[1];
    // frame: anchor@0..8, fp@8, token@16
    struct chunk* c = (struct chunk*)malloc(sizeof(struct chunk));
    c->fwd = (long*)&anchor[0];
    fake[0] = 0;
    fake[1] = target;
    long* p = (long*)c->data;
    p[2] = (long)&anchor[0] + 8;        // heap overflow: fwd := &saved fp
    *(c->fwd) = (long)&fake[0];
}
int main() { vulnerable((long)&attacker); return 0; }
"#;

const P17_FNPTR: &str = r#"
void attacker(void) { exit(66); }
void safe(void) { }
char gbuf[16];
long* gptr;
void (*ghandler)(void) = safe;
int main() {
    gptr = (long*)gbuf;
    long* p = (long*)gbuf;
    // globals: gbuf@G..16, gptr@G+16..24, ghandler@G+24..32
    p[2] = (long)gbuf + 24;             // overflow gbuf: gptr := &ghandler
    *gptr = (long)&attacker;
    ghandler();
    return 0;
}
"#;

const P18_JB: &str = r#"
void attacker(void) { exit(66); }
long gjb[8];
struct chunk { char data[16]; long* fwd; };
int main() {
    if (setjmp(gjb) != 0) return 0;
    struct chunk* c = (struct chunk*)malloc(sizeof(struct chunk));
    c->fwd = (long*)&gjb[1];
    long* p = (long*)c->data;
    p[2] = (long)&gjb[0];               // heap overflow: fwd := &gjb[0]
    *(c->fwd) = (long)&attacker;        // forge the jump token
    longjmp(gjb, 1);
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_attacks_grouped_like_table3() {
        let attacks = all();
        assert_eq!(attacks.len(), 18);
        let count = |t: Technique, l: Location| {
            attacks
                .iter()
                .filter(|a| a.technique == t && a.location == l)
                .count()
        };
        assert_eq!(count(Technique::Direct, Location::Stack), 6);
        assert_eq!(count(Technique::Direct, Location::HeapBssData), 2);
        assert_eq!(count(Technique::PointerRedirect, Location::Stack), 6);
        assert_eq!(count(Technique::PointerRedirect, Location::HeapBssData), 4);
    }

    #[test]
    fn sources_compile() {
        for a in all() {
            sb_cir::compile(a.source)
                .unwrap_or_else(|e| panic!("attack {} does not compile: {e}", a.id));
        }
    }
}
