//! Fleet-style serving of the §6.4 daemons through the session API:
//! each daemon is compiled once into a `Program`, instantiated once,
//! and then serves a stream of request batches on the same `Instance`.
//!
//! This is the deployment shape the ROADMAP's server north star needs —
//! one shadow reservation per worker, reset between requests — and the
//! compatibility claim of §6.4 restated per request: every batch
//! returns the unprotected checksum, with zero false positives, for
//! both checking modes.

use sb_vm::MachineConfig;
use sb_workloads::daemons;
use softbound::{CheckMode, Engine};

#[test]
fn daemons_serve_repeated_batches_on_one_instance() {
    for daemon in daemons::all() {
        // Unprotected reference checksums per batch size.
        let expected: Vec<Option<i64>> = (1..=3)
            .map(|n| {
                let prog = sb_cir::compile(daemon.source).expect("daemon compiles unmodified");
                let mut module = sb_ir::lower(&prog, daemon.name);
                sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
                let mut m = sb_vm::Machine::uninstrumented(&module);
                m.run("main", &[n]).ret()
            })
            .collect();

        for mode in [CheckMode::Full, CheckMode::StoreOnly] {
            let engine = Engine::new()
                .check_mode(mode)
                .machine_config(MachineConfig::default());
            let program = engine
                .compile(daemon.source)
                .expect("daemon compiles unmodified");
            let mut instance = engine.instantiate(&program);
            // Two passes over the batch sizes: the second pass re-serves
            // each batch on the *same* instance and must reproduce the
            // first pass exactly.
            for pass in 0..2 {
                for (i, n) in (1..=3).enumerate() {
                    let r = instance.run("main", &[n]);
                    assert_eq!(
                        r.ret(),
                        expected[i],
                        "{}: batch {n} pass {pass} diverged under {mode:?} (no false \
                         positives allowed)",
                        daemon.name
                    );
                }
            }
            assert_eq!(instance.runs(), 6, "6 request batches served");
            instance.reset();
            assert_eq!(
                instance.live_entries(),
                0,
                "{}: metadata must be fully cleared after reset",
                daemon.name
            );
        }
    }
}
