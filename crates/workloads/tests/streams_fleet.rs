//! Fleet-serving edge cases for the request streams: the degenerate
//! batches a real daemon sees around deploys and drains — no traffic,
//! all-attack traffic, and a pool wider than the stream — must behave
//! exactly like their serial oracles, with no phantom requests, no
//! missed traps, and no worker-count dependence.

use sb_vm::Outcome;
use sb_workloads::{mixed_traffic, MIXED_HANDLER};
use softbound::{fleet, Engine, Facility};

fn engine() -> Engine {
    Engine::new().facility(Facility::ShadowPaged)
}

#[test]
fn empty_request_batch_serves_nothing() {
    let engine = engine();
    let program = engine.compile(MIXED_HANDLER).expect("handler compiles");
    let requests = mixed_traffic(0, 4, 7);
    let report = fleet::serve(&engine, &program, "main", &requests, 4);
    assert!(report.results.is_empty());
    assert_eq!(report.reqs_per_sec, 0.0);
    assert_eq!(report.p50_ns, 0);
    assert_eq!(report.per_worker.len(), 4);
    assert!(report
        .per_worker
        .iter()
        .all(|w| w.served == 0 && w.traps == 0));
}

#[test]
fn all_trapping_batch_traps_every_request_and_nothing_else() {
    let engine = engine();
    let program = engine.compile(MIXED_HANDLER).expect("handler compiles");
    // trap_every = 1: every request carries an oversized header length.
    let requests = mixed_traffic(24, 1, 11);
    let report = fleet::serve(&engine, &program, "main", &requests, 3);
    assert_eq!(report.results.len(), 24);
    for r in &report.results {
        assert!(
            r.observation.outcome.is_spatial_violation(),
            "request {} (len {}) should have trapped, got {:?}",
            r.index,
            requests[r.index],
            r.observation.outcome
        );
        assert!(r.observation.violation_count >= 1);
    }
    let traps: u64 = report.per_worker.iter().map(|w| w.traps).sum();
    assert_eq!(traps, 24, "every request must be counted as a trap");
    // A trapping fleet must still be deterministic: replay serially.
    let mut inst = engine.instantiate(&program);
    for r in &report.results {
        let serial = fleet::observe(&mut inst, "main", requests[r.index]);
        assert_eq!(
            serial, r.observation,
            "request {} diverged from the serial oracle",
            r.index
        );
    }
}

#[test]
fn single_request_with_wide_pool_is_served_exactly_once() {
    let engine = engine();
    let program = engine.compile(MIXED_HANDLER).expect("handler compiles");
    let requests = mixed_traffic(1, 0, 5);
    let report = fleet::serve(&engine, &program, "main", &requests, 8);
    assert_eq!(report.workers, 8);
    assert_eq!(report.results.len(), 1, "one request, one result");
    assert_eq!(
        report.per_worker.iter().map(|w| w.served).sum::<usize>(),
        1,
        "idle workers must not invent work"
    );
    let obs = &report.results[0].observation;
    assert!(
        matches!(obs.outcome, Outcome::Finished { .. }),
        "safe request must finish, got {:?}",
        obs.outcome
    );
    assert_eq!(obs.violation_count, 0);
    // The result must match a serial run bit-for-bit.
    let mut inst = engine.instantiate(&program);
    assert_eq!(fleet::observe(&mut inst, "main", requests[0]), *obs);
}
