//! Quickstart: compile a C program, run it unprotected (watch the silent
//! corruption), then run it under SoftBound via the session API and
//! watch the overflow abort — twice, on the same reusable instance.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use softbound_repro::core::Engine;
use softbound_repro::vm::run_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = r#"
        int secret = 42;          // adjacent global, silently clobbered in plain C
        int table[4];
        int main() {
            for (int i = 0; i <= 4; i++) {   // off-by-one
                table[i] = 7;
            }
            printf("secret = %d\n", secret);
            return secret;
        }
    "#;

    println!("== plain C (uninstrumented) ==");
    let plain = run_source(src, "main", &[]);
    print!("{}", plain.output);
    println!("outcome: {:?}", plain.outcome);
    println!("(the overflow silently corrupted `secret`)\n");

    println!("== under SoftBound (full checking, shadow space) ==");
    let engine = Engine::new();
    let program = engine.compile(src)?;
    let mut instance = engine.instantiate(&program);
    let protected = instance.run("main", &[]);
    println!("outcome: {:?}", protected.outcome);
    println!(
        "checks executed: {}, metadata ops: {}, redundant checks removed at compile time: {}",
        protected.stats.checks,
        protected.stats.meta_loads + protected.stats.meta_stores,
        program.stats().checks_eliminated,
    );
    assert!(protected.outcome.is_spatial_violation());

    // The instance resets itself between runs: a second "request" sees
    // exactly the same verdict without recompiling or re-reserving the
    // shadow space.
    let again = instance.run("main", &[]);
    assert_eq!(again.outcome, protected.outcome);
    instance.reset();
    assert_eq!(instance.live_entries(), 0);
    println!("\nSoftBound aborted at the out-of-bounds store, as the paper promises —");
    println!(
        "and did it twice on one reusable instance ({} runs).",
        instance.runs()
    );
    Ok(())
}
