//! Quickstart: compile a C program, run it unprotected (watch the silent
//! corruption), then run it under SoftBound and watch the overflow abort.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use softbound_repro::core::{protect, SoftBoundConfig};
use softbound_repro::vm::run_source;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = r#"
        int secret = 42;          // adjacent global, silently clobbered in plain C
        int table[4];
        int main() {
            for (int i = 0; i <= 4; i++) {   // off-by-one
                table[i] = 7;
            }
            printf("secret = %d\n", secret);
            return secret;
        }
    "#;

    println!("== plain C (uninstrumented) ==");
    let plain = run_source(src, "main", &[]);
    print!("{}", plain.output);
    println!("outcome: {:?}", plain.outcome);
    println!("(the overflow silently corrupted `secret`)\n");

    println!("== under SoftBound (full checking, shadow space) ==");
    let protected = protect(src, &SoftBoundConfig::default(), "main", &[])?;
    println!("outcome: {:?}", protected.outcome);
    println!(
        "checks executed: {}, metadata ops: {}",
        protected.stats.checks,
        protected.stats.meta_loads + protected.stats.meta_stores
    );
    assert!(protected.outcome.is_spatial_violation());
    println!("\nSoftBound aborted at the out-of-bounds store, as the paper promises.");
    Ok(())
}
