//! The paper's §2.1 motivating example: a string overflow inside a struct
//! clobbers the function pointer sitting next to it. Object-based tools
//! (whole-object granularity) cannot see it; SoftBound's shrunken
//! sub-object bounds catch it.
//!
//! ```sh
//! cargo run --example sub_object_overflow
//! ```

use softbound_repro::baselines::Scheme;
use softbound_repro::core::SoftBoundConfig;

const SRC: &str = r#"
    struct node { char str[8]; void (*func)(void); };
    void pwned(void) { puts("function pointer hijacked!"); exit(66); }
    void fine(void)  { puts("function pointer intact"); }
    int main() {
        struct node n;
        n.func = fine;
        char* ptr = n.str;
        strcpy(ptr, "overflow...");   // 12 bytes into an 8-byte field
        n.func();
        return 0;
    }
"#;

fn main() {
    let schemes = [
        Scheme::Uninstrumented,
        Scheme::Mudflap,
        Scheme::JonesKelly,
        Scheme::Mscc,
        Scheme::SoftBound(SoftBoundConfig::default()),
    ];
    for scheme in schemes {
        let r = scheme.run(SRC, "main", &[]).expect("compiles");
        let verdict = if r.outcome.is_spatial_violation() {
            "DETECTED the sub-object overflow"
        } else {
            "missed it (function pointer was clobbered)"
        };
        println!("{:<38} -> {}", scheme.label(), verdict);
        if !r.output.is_empty() {
            for line in r.output.lines() {
                println!("{:<38}    output: {line}", "");
            }
        }
    }
    println!("\nOnly pointer-based schemes with sub-object bounds (Table 1) catch this.");
}
