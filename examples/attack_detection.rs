//! Run the full Wilander & Kamkar attack suite (Table 3): every attack
//! takes control of the unprotected machine; SoftBound stops all of them
//! in both checking modes.
//!
//! ```sh
//! cargo run --example attack_detection
//! ```

use softbound_repro::core::{Engine, SoftBoundConfig};
use softbound_repro::vm::{run_source, Outcome};
use softbound_repro::workloads::attacks;

fn main() {
    let full_engine = Engine::new().softbound_config(SoftBoundConfig::full_shadow());
    let store_engine = Engine::new().softbound_config(SoftBoundConfig::store_only_shadow());
    println!(
        "{:<4}{:<18}{:<12}{:<36}{:>12}{:>8}{:>8}",
        "#", "technique", "location", "target", "unprotected", "full", "store"
    );
    for a in attacks::all() {
        let plain = run_source(a.source, "main", &[]);
        let took_control = matches!(
            plain.outcome,
            Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
        );
        let full = full_engine
            .run_once(a.source, "main", &[])
            .expect("compiles")
            .outcome
            .is_spatial_violation();
        let store = store_engine
            .run_once(a.source, "main", &[])
            .expect("compiles")
            .outcome
            .is_spatial_violation();
        println!(
            "{:<4}{:<18}{:<12}{:<36}{:>12}{:>8}{:>8}",
            a.id,
            format!("{:?}", a.technique),
            format!("{:?}", a.location),
            a.target.label(),
            if took_control { "hijacked" } else { "inert?!" },
            if full { "caught" } else { "MISSED" },
            if store { "caught" } else { "MISSED" },
        );
    }
    println!("\nStore-only checking suffices: every attack needs at least one OOB write (§6.2).");
}
