//! Run the full Wilander & Kamkar attack suite (Table 3): every attack
//! takes control of the unprotected machine; SoftBound stops all of
//! them in both checking modes. The `hardened` column shows the
//! continuing policy: the corrupting store is clamped to its object's
//! bounds, the program runs on, and the attempt is documented as
//! structured evidence records instead of a trap.
//!
//! ```sh
//! cargo run --example attack_detection
//! ```

use softbound_repro::core::{Engine, SoftBoundConfig, ViolationPolicy};
use softbound_repro::vm::{run_source, Outcome};
use softbound_repro::workloads::attacks;

fn main() {
    let full_engine = Engine::new().softbound_config(SoftBoundConfig::full_shadow());
    let store_engine = Engine::new().softbound_config(SoftBoundConfig::store_only_shadow());
    let hardened_engine = Engine::new()
        .softbound_config(SoftBoundConfig::full_shadow())
        .policy(ViolationPolicy::Hardened);
    println!(
        "{:<4}{:<18}{:<12}{:<36}{:>12}{:>8}{:>8}{:>22}",
        "#", "technique", "location", "target", "unprotected", "full", "store", "hardened"
    );
    for a in attacks::all() {
        let plain = run_source(a.source, "main", &[]);
        let took_control = matches!(
            plain.outcome,
            Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
        );
        let full = full_engine
            .run_once(a.source, "main", &[])
            .expect("compiles")
            .outcome
            .is_spatial_violation();
        let store = store_engine
            .run_once(a.source, "main", &[])
            .expect("compiles")
            .outcome
            .is_spatial_violation();
        let program = hardened_engine.compile(a.source).expect("compiles");
        let mut instance = hardened_engine.instantiate(&program);
        let hardened_outcome = instance.run("main", &[]).outcome;
        let neutralized = !matches!(
            hardened_outcome,
            Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
        ) && !hardened_outcome.is_spatial_violation();
        let evidence = instance.drain_evidence();
        println!(
            "{:<4}{:<18}{:<12}{:<36}{:>12}{:>8}{:>8}{:>22}",
            a.id,
            format!("{:?}", a.technique),
            format!("{:?}", a.location),
            a.target.label(),
            if took_control { "hijacked" } else { "inert?!" },
            if full { "caught" } else { "MISSED" },
            if store { "caught" } else { "MISSED" },
            if neutralized {
                format!("clamped ({} records)", evidence.len())
            } else {
                "NOT NEUTRALIZED".to_string()
            },
        );
    }
    println!(
        "\nStore-only checking suffices: every attack needs at least one OOB write (§6.2).\n\
         Hardened keeps the process alive: each clamped attack leaves an evidence trail\n\
         (PC, pointer, bounds, first OOB byte) drainable via Instance::drain_evidence()."
    );
}
