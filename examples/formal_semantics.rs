//! Drive the §4 formal semantics by hand: the same program evaluated
//! under the plain (partial) C semantics and the SoftBound-instrumented
//! semantics, plus a bulk machine-check of the metatheory.
//!
//! ```sh
//! cargo run --example formal_semantics
//! ```

use softbound_repro::formal::gen::{gen_cmd, universe, Rng};
use softbound_repro::formal::{
    check_corollary, check_preservation, check_progress, eval_instrumented, eval_plain, AtomicTy,
    Cmd, Lhs, PointerTy, Rhs, TypeEnv,
};

fn main() {
    let tenv = TypeEnv::default();
    let env = softbound_repro::formal::Env::with_vars(&[
        ("x", AtomicTy::Int),
        (
            "p",
            AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int))),
        ),
    ])
    .expect("allocates");

    // p = (int*) 12345; x = *p;   — a forged pointer dereference.
    let forged = Cmd::Seq(
        Box::new(Cmd::Assign(
            Lhs::Var("p".into()),
            Rhs::Cast(
                AtomicTy::Ptr(Box::new(PointerTy::Atomic(AtomicTy::Int))),
                Box::new(Rhs::Int(12345)),
            ),
        )),
        Box::new(Cmd::Assign(
            Lhs::Var("x".into()),
            Rhs::Read(Lhs::Deref(Box::new(Lhs::Var("p".into())))),
        )),
    );
    let mut e1 = env.clone();
    let mut e2 = env.clone();
    println!("program: p = (int*)12345; x = *p;");
    println!(
        "  plain C semantics:       {:?}   (undefined behaviour = stuck)",
        eval_plain(&tenv, &mut e1, &forged)
    );
    println!(
        "  instrumented semantics:  {:?}   (bounds assertion fired)",
        eval_instrumented(&tenv, &mut e2, &forged)
    );

    // Bulk: machine-check the three §4 theorems over random programs.
    let (tenv, env) = universe();
    let n = 2000;
    let mut aborts = 0;
    for seed in 0..n {
        let c = gen_cmd(&mut Rng(seed), &tenv, &env, 1 + (seed % 6) as u32);
        check_preservation(&tenv, &env, &c).expect("Theorem 4.1 (Preservation)");
        let r = check_progress(&tenv, &env, &c).expect("Theorem 4.2 (Progress)");
        check_corollary(&tenv, &env, &c).expect("Corollary 4.1");
        if matches!(r, softbound_repro::formal::CResult::Abort) {
            aborts += 1;
        }
    }
    println!("\nmachine-checked Preservation, Progress and Corollary 4.1 on {n} random programs");
    println!("({aborts} of them aborted on a detected violation — never stuck, never silent)");
}
