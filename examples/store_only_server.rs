//! §6.4-style production scenario: run the HTTP-like daemon under
//! store-only checking (the low-overhead mode the paper recommends for
//! production) and compare cost against full checking and no protection.
//!
//! ```sh
//! cargo run --example store_only_server --release
//! ```

use softbound_repro::core::{compile_protected, run_instrumented, SoftBoundConfig};
use softbound_repro::vm::{Machine, MachineConfig, NoRuntime};
use softbound_repro::workloads::daemons;

fn main() {
    let daemon = daemons::all()
        .into_iter()
        .find(|d| d.name == "nhttpd")
        .expect("exists");
    println!("daemon: {} — {}\n", daemon.name, daemon.description);

    // Baseline.
    let prog = sb_cir::compile(daemon.source).expect("compiles unmodified");
    let mut module = sb_ir::lower(&prog, daemon.name);
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    let mut machine = Machine::new(&module, MachineConfig::default(), NoRuntime);
    let base = machine.run("main", &[20]);
    let base_ret = base.ret().expect("daemon runs");
    println!(
        "{:<28}cycles {:>10}   checksum {}",
        "uninstrumented", base.stats.cycles, base_ret
    );

    for cfg in [
        SoftBoundConfig::store_only_shadow(),
        SoftBoundConfig::full_shadow(),
    ] {
        let m = compile_protected(daemon.source, &cfg).expect("compiles unmodified");
        let r = run_instrumented(&m, &cfg, MachineConfig::default(), "main", &[20]);
        assert_eq!(r.ret(), Some(base_ret), "no false positives, same answers");
        let overhead = 100.0 * (r.stats.cycles as f64 / base.stats.cycles as f64 - 1.0);
        println!(
            "{:<28}cycles {:>10}   checksum {}   overhead {:>5.1}%   checks {}",
            cfg.label(),
            r.stats.cycles,
            r.ret().expect("finished"),
            overhead,
            r.stats.checks
        );
    }
    println!("\nTransformed without source changes; zero false positives (§6.4).");
}
