//! §6.4-style production scenario: serve repeated request batches from
//! the HTTP-like daemon on a *reused* `Instance` under store-only
//! checking (the low-overhead mode the paper recommends for
//! production), comparing cost against full checking and no protection,
//! and comparing serving latency against building a fresh machine per
//! batch.
//!
//! ```sh
//! cargo run --example store_only_server --release
//! ```

use softbound_repro::core::fleet;
use softbound_repro::core::{CheckMode, Engine, SoftBoundConfig};
use softbound_repro::vm::{Machine, MachineConfig, NoRuntime};
use softbound_repro::workloads::daemons;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let daemon = daemons::all()
        .into_iter()
        .find(|d| d.name == "nhttpd")
        .expect("exists");
    println!("daemon: {} — {}\n", daemon.name, daemon.description);

    // Baseline.
    let prog = sb_cir::compile(daemon.source).expect("compiles unmodified");
    let mut module = sb_ir::lower(&prog, daemon.name);
    sb_ir::optimize(&mut module, sb_ir::OptLevel::PreInstrument);
    let mut machine = Machine::new(&module, MachineConfig::default(), NoRuntime);
    let base = machine.run("main", &[20]);
    let base_ret = base.ret().expect("daemon runs");
    println!(
        "{:<28}cycles {:>10}   checksum {}",
        "uninstrumented", base.stats.cycles, base_ret
    );

    for cfg in [
        SoftBoundConfig::store_only_shadow(),
        SoftBoundConfig::full_shadow(),
    ] {
        let engine = Engine::new().softbound_config(cfg.clone());
        let program = engine.compile(daemon.source)?;
        let mut instance = engine.instantiate(&program);
        let r = instance.run("main", &[20]);
        assert_eq!(r.ret(), Some(base_ret), "no false positives, same answers");
        let overhead = 100.0 * (r.stats.cycles as f64 / base.stats.cycles as f64 - 1.0);
        println!(
            "{:<28}cycles {:>10}   checksum {}   overhead {:>5.1}%   checks {}",
            cfg.label(),
            r.stats.cycles,
            r.ret().expect("finished"),
            overhead,
            r.stats.checks
        );
    }

    // The session payoff: serve a stream of batches on one instance
    // (shadow reservation + compile amortized) vs a fresh machine per
    // batch from the same compiled program.
    let engine = Engine::new().check_mode(CheckMode::StoreOnly);
    let program = engine.compile(daemon.source)?;
    const BATCHES: usize = 10;

    let mut instance = engine.instantiate(&program);
    instance.run("main", &[5]); // warm
    let t = Instant::now();
    for _ in 0..BATCHES {
        assert!(instance.run("main", &[5]).ret().is_some());
    }
    let reused = t.elapsed();

    let t = Instant::now();
    for _ in 0..BATCHES {
        assert!(engine
            .instantiate(&program)
            .run("main", &[5])
            .ret()
            .is_some());
    }
    let fresh = t.elapsed();

    println!(
        "\nserving {BATCHES} request batches: reused instance {:?} vs fresh machine per batch {:?} \
         ({:.2}x)",
        reused,
        fresh,
        fresh.as_secs_f64() / reused.as_secs_f64().max(1e-9),
    );

    // Threaded mode: the same compiled Program served by a worker pool
    // (Program is Send + Sync; each worker owns one Instance). The
    // per-worker report shows the standing metadata reservation a
    // shared-reservation design would amortize.
    let stream = softbound_repro::workloads::nhttpd_batches(16, 7);
    for workers in [1usize, 4] {
        let report = fleet::serve(&engine, &program, "main", &stream, workers);
        let reserved_mib: usize = report
            .per_worker
            .iter()
            .map(|w| w.reservation_bytes >> 20)
            .sum();
        println!(
            "fleet x{workers}: {} requests at {:.0} req/s (p50 {:?}, p99 {:?}, {reserved_mib} MiB reserved across pool)",
            report.results.len(),
            report.reqs_per_sec,
            std::time::Duration::from_nanos(report.p50_ns),
            std::time::Duration::from_nanos(report.p99_ns),
        );
    }
    println!("Transformed without source changes; zero false positives (§6.4).");
    Ok(())
}
