//! Differential proof that instance reuse is invisible: N back-to-back
//! runs on one `Instance` must observe exactly what N fresh machines
//! observe — identical outcomes, outputs, dynamic statistics, runtime
//! check/violation counters, and final-memory digests — across all
//! four metadata facilities (including the process-wide shared shadow
//! reservation), for both finishing and trapping programs.
//!
//! This is what licenses a server to keep one machine per worker and
//! reset between requests instead of rebuilding the world.

use sb_vm::Outcome;
use softbound::{Engine, Facility, Instance, Program, SoftBoundConfig};

/// Everything observable about one run of one instance.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    outcome: Outcome,
    output: String,
    checks: u64,
    meta_loads: u64,
    meta_stores: u64,
    cycles: u64,
    check_count: u64,
    violation_count: u64,
    mem_hash: u64,
    live_entries: usize,
}

fn observe_run(instance: &mut Instance<'_>, arg: i64) -> Observed {
    let r = instance.run("main", &[arg]);
    Observed {
        outcome: r.outcome,
        output: r.output,
        checks: r.stats.checks,
        meta_loads: r.stats.meta_loads,
        meta_stores: r.stats.meta_stores,
        cycles: r.stats.cycles,
        check_count: instance.check_count(),
        violation_count: instance.violation_count(),
        mem_hash: instance.mem_content_hash(),
        live_entries: instance.live_entries(),
    }
}

fn assert_reuse_invisible(engine: &Engine, program: &Program, args: &[i64], label: &str) {
    let mut reused = engine.instantiate(program);
    for (i, &arg) in args.iter().enumerate() {
        let on_reused = observe_run(&mut reused, arg);
        let mut fresh = engine.instantiate(program);
        let on_fresh = observe_run(&mut fresh, arg);
        assert_eq!(
            on_reused, on_fresh,
            "{label}: run {i} (arg {arg}) diverged between reused instance and fresh machine"
        );
    }
    assert_eq!(reused.runs(), args.len() as u64);
    reused.reset();
    assert_eq!(
        reused.live_entries(),
        0,
        "{label}: live metadata must vanish on reset"
    );
    assert_eq!(reused.check_count(), 0);
    assert_eq!(reused.violation_count(), 0);
}

fn engines() -> Vec<(Facility, Engine)> {
    [
        Facility::ShadowPaged,
        Facility::ShadowHashMap,
        Facility::HashTable,
        Facility::ShadowShared,
    ]
    .into_iter()
    .map(|f| (f, Engine::new().facility(f)))
    .collect()
}

#[test]
fn safe_workloads_reuse_equals_fresh_machines() {
    // Pointer-heavy evaluation workloads: plenty of metadata traffic,
    // heap churn, and output.
    for name in ["treeadd", "li"] {
        let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
        for (facility, engine) in engines() {
            let program = engine.compile(w.source).expect("workload compiles");
            assert_reuse_invisible(
                &engine,
                &program,
                &[w.default_arg, w.default_arg, w.default_arg],
                &format!("{name}/{facility:?}"),
            );
        }
    }
}

#[test]
fn trapping_program_reuse_equals_fresh_machines() {
    // A run that ends in a spatial violation leaves frames, heap blocks,
    // and metadata mid-flight; the next run must still match a fresh
    // machine exactly.
    let src = r#"
        int main(int n) {
            int* p = (int*)malloc(8 * sizeof(int));
            for (int i = 0; i < 8; i++) p[i] = i;
            if (n > 0) { p[8 + n] = 1; }
            int s = p[0] + p[7];
            free(p);
            return s;
        }
    "#;
    for (facility, engine) in engines() {
        let program = engine.compile(src).expect("compiles");
        // Alternate trap / finish / trap / finish.
        assert_reuse_invisible(
            &engine,
            &program,
            &[1, 0, 3, 0],
            &format!("oob/{facility:?}"),
        );
        let mut check = engine.instantiate(&program);
        let r = check.run("main", &[2]);
        assert!(
            r.outcome.is_spatial_violation(),
            "{facility:?}: expected a violation, got {:?}",
            r.outcome
        );
    }
}

#[test]
fn reuse_across_different_allocation_layouts() {
    // Regression for the `Mem` last-page translation cache: `reset` now
    // recycles page frames instead of rebuilding the memory, so a stale
    // cached (page → frame) pair would leak one page of the previous
    // run's image into the next. Each argument below drives a different
    // allocation layout (different heap block counts/sizes and stack
    // depths), and every run's observables — final-memory digest
    // included — must match a fresh machine bit for bit.
    let src = r#"
        struct node { long v; struct node* next; };
        int grow(int depth, int fan) {
            if (depth <= 0) return 1;
            struct node* head = NULL;
            for (int i = 0; i < fan; i++) {
                struct node* n = (struct node*)malloc(sizeof(struct node));
                n->v = depth * 100 + i;
                n->next = head;
                head = n;
            }
            int s = grow(depth - 1, fan + 1);
            while (head != NULL) {
                s += (int)(head->v % 7);
                head = head->next;
            }
            return s;
        }
        int main(int n) {
            char* pad = (char*)malloc(64 + 32 * n);
            pad[0] = (char)n;
            int s = grow(n % 5, 1 + n % 3);
            return s + pad[0];
        }
    "#;
    for (facility, engine) in engines() {
        let program = engine.compile(src).expect("compiles");
        assert_reuse_invisible(
            &engine,
            &program,
            &[1, 6, 2, 9, 0, 4],
            &format!("layouts/{facility:?}"),
        );
    }
}

#[test]
fn shared_facility_reset_does_not_disturb_sibling_instances() {
    // Two instances over the same process-wide shared reservation:
    // resetting one must clear *its* metadata only. A leak through the
    // shared directory would show up as the sibling losing entries, a
    // changed memory digest, or a diverging subsequent run.
    let src = r#"
        int main() {
            long** blocks = (long**)malloc(8 * sizeof(long*));
            for (int i = 0; i < 8; i++) {
                blocks[i] = (long*)malloc(sizeof(long));
            }
            return blocks[7] != 0;
        }
    "#;
    let engine = Engine::new().facility(Facility::ShadowShared);
    let program = engine.compile(src).expect("compiles");
    let mut a = engine.instantiate(&program);
    let mut b = engine.instantiate(&program);
    let first_on_b = observe_run(&mut b, 0);
    observe_run(&mut a, 0);
    assert!(
        a.live_entries() > 0,
        "the program leaks metadata on purpose"
    );
    assert!(b.live_entries() > 0);
    let b_live = b.live_entries();
    let b_hash = b.mem_content_hash();

    a.reset();
    assert_eq!(a.live_entries(), 0, "reset worker must be empty");
    assert_eq!(
        b.live_entries(),
        b_live,
        "sibling lost metadata to another worker's reset"
    );
    assert_eq!(
        b.mem_content_hash(),
        b_hash,
        "sibling memory disturbed by another worker's reset"
    );
    // Both instances keep serving correctly afterwards.
    assert_eq!(observe_run(&mut b, 0), first_on_b);
    assert_eq!(observe_run(&mut a, 0), first_on_b);
}

#[test]
fn store_only_mode_reuses_identically() {
    let cfg = SoftBoundConfig::store_only_shadow();
    let engine = Engine::new().softbound_config(cfg);
    let w = sb_workloads::benchmark_by_name("mst").expect("workload exists");
    let program = engine.compile(w.source).expect("compiles");
    assert_reuse_invisible(
        &engine,
        &program,
        &[w.default_arg, w.default_arg],
        "mst/store-only",
    );
}
