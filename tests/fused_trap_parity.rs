//! Regression: fused check+access superinstructions must fault exactly
//! like their unfused twins.
//!
//! The pre-decoded lane fuses an `SbCheck` with the load/store it
//! guards into one superinstruction (`CheckLoad`/`CheckStore`). A
//! 1-byte overflow whose faulting address sits on a page boundary is
//! the adversarial case: the access's *object* ends exactly where a
//! fresh page begins, so any fused-path shortcut that checked the page
//! rather than the bounds — or reported the access site instead of the
//! faulting byte — would diverge from the tree-walk oracle here. Every
//! facility's pre-decoded lane must report the same faulting address,
//! write flag, and trap PC (dynamic instruction index) as its tree-walk
//! twin, for both the fused-store and fused-load shapes.

use sb_vm::{Machine, MachineConfig, Outcome, Trap, HEAP_BASE, PAGE_SIZE};
use softbound::{Engine, MetadataFacility, Program, SoftBoundConfig, SoftBoundRuntime};

/// One page exactly: `malloc(4096)` is the program's first allocation,
/// so the object spans `[HEAP_BASE, HEAP_BASE + 4096)` and `p[4096]`
/// is one byte past it *and* the first byte of the next page.
const STORE_STRADDLE: &str = r#"
    int main(int n) {
        char* p = (char*)malloc(4096);
        for (int i = 0; i < 4096; i += 512) p[i] = (char)(i / 512 + 1);
        p[n] = 7;
        return p[0];
    }
"#;

const LOAD_STRADDLE: &str = r#"
    int main(int n) {
        char* p = (char*)malloc(4096);
        for (int i = 0; i < 4096; i += 512) p[i] = (char)(i / 512 + 1);
        return p[n];
    }
"#;

struct TrapObs {
    addr: u64,
    write: bool,
    insts: u64,
    output: String,
}

fn trap_of<F: MetadataFacility>(
    program: &Program,
    rt: SoftBoundRuntime<F>,
    arg: i64,
    predecoded: bool,
) -> TrapObs {
    let mut machine = Machine::new(program.module(), MachineConfig::default(), rt);
    let r = if predecoded {
        machine.attach_exec(program.exec());
        machine.run_predecoded("main", &[arg])
    } else {
        machine.run("main", &[arg])
    };
    match r.outcome {
        Outcome::Trapped(Trap::SpatialViolation {
            scheme: "softbound",
            addr,
            write,
        }) => TrapObs {
            addr,
            write,
            insts: r.stats.insts,
            output: r.output,
        },
        other => panic!("expected an explicit-check spatial violation, got {other:?}"),
    }
}

fn assert_parity(source: &str, is_store: bool) {
    let cfg = SoftBoundConfig::full_shadow();
    let program = Engine::new()
        .softbound_config(cfg.clone())
        .compile(source)
        .expect("compiles");
    // The fused path must actually be on trial: the kernel's guarded
    // access has to have been fused into a superinstruction.
    assert!(
        program.exec().fused_checks > 0,
        "no check+access pairs were fused — the regression tests nothing"
    );
    let boundary = HEAP_BASE + 4096;
    assert_eq!(boundary % PAGE_SIZE, 0, "fault must straddle a page");

    let tree = trap_of(&program, SoftBoundRuntime::new_paged(&cfg), 4096, false);
    assert_eq!(tree.addr, boundary, "tree-walk fault address");
    assert_eq!(tree.write, is_store);

    for (facility, obs_tree, obs_pre) in [
        (
            "paged",
            trap_of(&program, SoftBoundRuntime::new_paged(&cfg), 4096, false),
            trap_of(&program, SoftBoundRuntime::new_paged(&cfg), 4096, true),
        ),
        (
            "shadow-hashmap",
            trap_of(
                &program,
                SoftBoundRuntime::new_shadow_hashmap(&cfg),
                4096,
                false,
            ),
            trap_of(
                &program,
                SoftBoundRuntime::new_shadow_hashmap(&cfg),
                4096,
                true,
            ),
        ),
        (
            "hash-table",
            trap_of(&program, SoftBoundRuntime::new_hash(&cfg), 4096, false),
            trap_of(&program, SoftBoundRuntime::new_hash(&cfg), 4096, true),
        ),
    ] {
        assert_eq!(
            obs_pre.addr, obs_tree.addr,
            "{facility}: fused lane faulting address diverged"
        );
        assert_eq!(obs_pre.addr, boundary, "{facility}: not the first OOB byte");
        assert_eq!(obs_pre.write, obs_tree.write, "{facility}: write flag");
        assert_eq!(
            obs_pre.insts, obs_tree.insts,
            "{facility}: trap PC (dynamic instruction index) diverged"
        );
        assert_eq!(obs_pre.output, obs_tree.output, "{facility}: output");
    }
}

#[test]
fn fused_check_store_traps_like_tree_walk_across_a_page_boundary() {
    assert_parity(STORE_STRADDLE, true);
}

#[test]
fn fused_check_load_traps_like_tree_walk_across_a_page_boundary() {
    assert_parity(LOAD_STRADDLE, false);
}

#[test]
fn one_byte_short_of_the_boundary_is_silent_in_every_lane() {
    // The dual obligation: p[4095] (the object's last byte) must *not*
    // trap anywhere — a fused path that over-approximated to page
    // granularity would fail exactly this.
    let cfg = SoftBoundConfig::full_shadow();
    let program = Engine::new()
        .softbound_config(cfg.clone())
        .compile(STORE_STRADDLE)
        .expect("compiles");
    for predecoded in [false, true] {
        let mut machine = Machine::new(
            program.module(),
            MachineConfig::default(),
            SoftBoundRuntime::new_paged(&cfg),
        );
        let r = if predecoded {
            machine.attach_exec(program.exec());
            machine.run_predecoded("main", &[4095])
        } else {
            machine.run("main", &[4095])
        };
        assert_eq!(
            r.ret(),
            Some(1),
            "in-bounds run must finish (pre={predecoded})"
        );
        assert_eq!(machine.hooks().violation_count, 0);
    }
}
