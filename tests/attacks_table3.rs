//! Table 3 end-to-end: every Wilander attack really succeeds on the
//! unprotected machine and is detected by SoftBound in *both* checking
//! modes (the paper's all-"yes" detection columns).

use sb_vm::Outcome;
use sb_workloads::attacks;
use softbound::SoftBoundConfig;

/// The Wilander "attack succeeded" criterion: control reached the
/// attacker payload — either by a hijacked return token / frame pointer /
/// jmp_buf (VM-detected) or by a corrupted function pointer being called
/// "legitimately" (payload exits with 66).
fn attack_succeeded(outcome: &Outcome) -> bool {
    matches!(
        outcome,
        Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
    )
}

#[test]
fn all_attacks_succeed_unprotected() {
    for a in attacks::all() {
        let r = sb_vm::run_source(a.source, "main", &[]);
        assert!(
            attack_succeeded(&r.outcome),
            "attack {} ({:?}/{:?}/{}) did not take control: {:?}",
            a.id,
            a.technique,
            a.location,
            a.target.label(),
            r.outcome
        );
    }
}

#[test]
fn full_checking_detects_all_attacks() {
    let engine = softbound::Engine::new().softbound_config(SoftBoundConfig::full_shadow());
    for a in attacks::all() {
        let r = engine.run_once(a.source, "main", &[]).expect("compiles");
        assert!(
            r.outcome.is_spatial_violation(),
            "attack {} not detected by full checking: {:?}",
            a.id,
            r.outcome
        );
    }
}

#[test]
fn store_only_checking_detects_all_attacks() {
    // Table 3's key claim: store-only checking stops every attack,
    // because each requires at least one out-of-bounds write.
    let engine = softbound::Engine::new().softbound_config(SoftBoundConfig::store_only_shadow());
    for a in attacks::all() {
        let r = engine.run_once(a.source, "main", &[]).expect("compiles");
        assert!(
            r.outcome.is_spatial_violation(),
            "attack {} not detected by store-only checking: {:?}",
            a.id,
            r.outcome
        );
    }
}
