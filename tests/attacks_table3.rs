//! Table 3 end-to-end: every Wilander attack really succeeds on the
//! unprotected machine and is detected by SoftBound in *both* checking
//! modes (the paper's all-"yes" detection columns).

use sb_vm::Outcome;
use sb_workloads::attacks;
use softbound::{SoftBoundConfig, ViolationPolicy};

/// The Wilander "attack succeeded" criterion: control reached the
/// attacker payload — either by a hijacked return token / frame pointer /
/// jmp_buf (VM-detected) or by a corrupted function pointer being called
/// "legitimately" (payload exits with 66).
fn attack_succeeded(outcome: &Outcome) -> bool {
    matches!(
        outcome,
        Outcome::Hijacked { .. } | Outcome::Exited { code: 66 }
    )
}

#[test]
fn all_attacks_succeed_unprotected() {
    for a in attacks::all() {
        let r = sb_vm::run_source(a.source, "main", &[]);
        assert!(
            attack_succeeded(&r.outcome),
            "attack {} ({:?}/{:?}/{}) did not take control: {:?}",
            a.id,
            a.technique,
            a.location,
            a.target.label(),
            r.outcome
        );
    }
}

#[test]
fn full_checking_detects_all_attacks() {
    let engine = softbound::Engine::new().softbound_config(SoftBoundConfig::full_shadow());
    for a in attacks::all() {
        let r = engine.run_once(a.source, "main", &[]).expect("compiles");
        assert!(
            r.outcome.is_spatial_violation(),
            "attack {} not detected by full checking: {:?}",
            a.id,
            r.outcome
        );
    }
}

#[test]
fn hardened_policy_neutralizes_every_attack_with_evidence() {
    // The continuing-policy counterpart of the all-"yes" columns: under
    // Hardened the corrupting store is clamped to the object's bounds,
    // so the attacker payload never gains control — no trap, no hijack
    // — and the runtime documents the attempt as structured evidence.
    let engine = softbound::Engine::new()
        .softbound_config(SoftBoundConfig::full_shadow())
        .policy(ViolationPolicy::Hardened);
    for a in attacks::all() {
        let program = engine.compile(a.source).expect("compiles");
        let mut instance = engine.instantiate(&program);
        let r = instance.run("main", &[]);
        assert!(
            !attack_succeeded(&r.outcome),
            "attack {} took control under the hardened policy: {:?}",
            a.id,
            r.outcome
        );
        assert!(
            !r.outcome.is_spatial_violation(),
            "attack {} trapped under the hardened policy (should clamp): {:?}",
            a.id,
            r.outcome
        );
        let evidence = instance.drain_evidence();
        let ev = evidence
            .iter()
            .find(|e| e.write)
            .unwrap_or_else(|| panic!("attack {}: no clamped-store evidence", a.id));
        assert!(
            ev.fault_addr < ev.base || ev.fault_addr >= ev.bound,
            "attack {}: evidence fault address {:#x} inside bounds [{:#x}, {:#x})",
            a.id,
            ev.fault_addr,
            ev.base,
            ev.bound
        );
    }
}

#[test]
fn monitor_policy_observes_every_attack_without_intervening() {
    // Monitor performs the out-of-bounds access, so the attack plays
    // out as on the unprotected machine — except that function-pointer
    // and setjmp-buffer checks trap under *every* policy (there is no
    // meaningful "clamped" control transfer), so fn-target attacks
    // still end in a spatial violation. Either way the evidence stream
    // names the corrupting store.
    let engine = softbound::Engine::new()
        .softbound_config(SoftBoundConfig::full_shadow())
        .policy(ViolationPolicy::Monitor);
    for a in attacks::all() {
        let program = engine.compile(a.source).expect("compiles");
        let mut instance = engine.instantiate(&program);
        let r = instance.run("main", &[]);
        assert!(
            attack_succeeded(&r.outcome) || r.outcome.is_spatial_violation(),
            "attack {} was neutralized under the monitor policy \
             (monitor must not repair): {:?}",
            a.id,
            r.outcome
        );
        let evidence = instance.drain_evidence();
        assert!(
            evidence.iter().any(|e| e.write),
            "attack {}: monitor recorded no out-of-bounds store",
            a.id
        );
    }
}

#[test]
fn store_only_checking_detects_all_attacks() {
    // Table 3's key claim: store-only checking stops every attack,
    // because each requires at least one out-of-bounds write.
    let engine = softbound::Engine::new().softbound_config(SoftBoundConfig::store_only_shadow());
    for a in attacks::all() {
        let r = engine.run_once(a.source, "main", &[]).expect("compiles");
        assert!(
            r.outcome.is_spatial_violation(),
            "attack {} not detected by store-only checking: {:?}",
            a.id,
            r.outcome
        );
    }
}
