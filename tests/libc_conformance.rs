//! Conformance suite entry points for the libc kernel corpus.
//!
//! The heavy lifting lives in `sb_bench::conformance`: every case runs
//! the uninstrumented baseline plus all 3 metadata facilities × 2
//! execution lanes and checks output/digest agreement on safe inputs
//! and first-out-of-bounds-byte traps on overflowing ones. This suite
//! pins the contract at the workspace level:
//!
//! 1. a 500-case deterministic fuzz run (the CI smoke job replays the
//!    same seed in release) finds zero divergences;
//! 2. every kernel is individually pinned in both regimes, including
//!    the exact faulting address of its canonical overflow;
//! 3. a proptest-driven property drives the harness from the vendored
//!    shim's byte-buffer/length generators, so arbitrary payloads — not
//!    just the steered generator — satisfy the same obligations.

use proptest::prelude::*;
use sb_bench::conformance::{fuzz, Case, KernelHarness};
use sb_vm::{Machine, MachineConfig, Outcome, Trap, HEAP_BASE};
use softbound::{Engine, SoftBoundConfig, SoftBoundRuntime};
use std::sync::OnceLock;

/// The fixed seed CI replays (`.github/workflows/ci.yml`).
const CI_SEED: u64 = 0x050f_7b0d;

fn harnesses() -> &'static [KernelHarness] {
    static CELL: OnceLock<Vec<KernelHarness>> = OnceLock::new();
    CELL.get_or_init(sb_bench::conformance::harnesses)
}

#[test]
fn five_hundred_seeded_cases_zero_divergences() {
    let report = fuzz(CI_SEED, 500);
    assert_eq!(report.cases, 500);
    assert!(
        report.failures.is_empty(),
        "divergences:\n{}",
        report
            .failures
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The steering must actually exercise both regimes.
    assert!(report.safe >= 100, "only {} safe cases", report.safe);
    assert!(
        report.overflow >= 100,
        "only {} overflow cases",
        report.overflow
    );
}

#[test]
fn every_kernel_pinned_in_both_regimes() {
    // (cap, len) = (32, 8) is safe and (16, 17) overflows for *every*
    // kernel in the corpus (see the per-kernel `safe` predicates).
    for h in harnesses() {
        let k = h.kernel();
        let safe = Case {
            kernel_idx: 0,
            cap: 32,
            len: 8,
            seed: 3,
            expect_safe: true,
        };
        assert!((k.safe)(32, 8), "{}: (32, 8) should be safe", k.name);
        h.run_case(&safe)
            .unwrap_or_else(|e| panic!("{} safe case diverged: {e}", k.name));

        let overflow = Case {
            kernel_idx: 0,
            cap: 16,
            len: 17,
            seed: 3,
            expect_safe: false,
        };
        assert!(!(k.safe)(16, 17), "{}: (16, 17) should overflow", k.name);
        h.run_case(&overflow)
            .unwrap_or_else(|e| panic!("{} overflow case diverged: {e}", k.name));
    }
}

#[test]
fn memcpy_overflow_traps_at_first_byte_past_the_heap_object() {
    // Concrete address-level pin, independent of the harness's own
    // G-line parsing: the kernel's malloc(cap) is the program's first
    // allocation, so it lands exactly at HEAP_BASE and a len > cap
    // memcpy must fault at HEAP_BASE + cap.
    let k = sb_workloads::libc_kernel_by_name("memcpy").expect("kernel exists");
    let cfg = SoftBoundConfig::full_shadow();
    let program = Engine::new()
        .softbound_config(cfg.clone())
        .compile(k.source)
        .expect("compiles");
    let mut machine = Machine::new(
        program.module(),
        MachineConfig::default(),
        SoftBoundRuntime::new_paged(&cfg),
    );
    let r = machine.run("main", &[16, 17, 3]);
    match r.outcome {
        Outcome::Trapped(Trap::SpatialViolation {
            scheme,
            addr,
            write,
        }) => {
            assert_eq!(addr, HEAP_BASE + 16, "not the first out-of-bounds byte");
            assert!(write, "memcpy overflow is a store");
            assert_eq!(scheme, "softbound-wrapper");
        }
        other => panic!("expected a spatial violation, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Arbitrary payloads through the shim's byte-buffer/length
    // generators: the payload's length becomes the kernel's `len`, its
    // bytes fold into the content seed, and the harness must uphold
    // every conformance obligation regardless of the safe/overflow
    // verdict that falls out.
    #[test]
    fn arbitrary_payloads_conform(
        payload in prop::collection::vec(any::<u8>(), 0..=64),
        cap in 1i64..=48,
        kernel_pick in any::<u16>(),
    ) {
        let hs = harnesses();
        let h = &hs[kernel_pick as usize % hs.len()];
        let len = payload.len() as i64;
        let seed = payload.iter().fold(0u64, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64)) % 1000;
        let case = Case {
            kernel_idx: 0,
            cap,
            len,
            seed: seed as i64,
            expect_safe: (h.kernel().safe)(cap, len),
        };
        if let Err(e) = h.run_case(&case) {
            return Err(proptest::test_runner::TestCaseError::fail(format!(
                "{} {case}: {e}",
                h.kernel().name
            )));
        }
    }
}
