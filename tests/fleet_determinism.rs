//! The fleet contract, proven differentially: N worker threads sharing
//! one compiled `Program` must observe *bit-identically* what N serial
//! fresh runs of the same request stream observe — outcomes, captured
//! output, dynamic statistics, runtime counters, and final-memory
//! digests — across all four metadata facilities (including the
//! process-wide shared shadow reservation), both execution lanes, and
//! both safe and trapping traffic.
//!
//! This is the concurrent analogue of `tests/instance_reuse.rs`: that
//! suite licenses *reuse* (reset between requests is invisible), this
//! one licenses *pooling* (which worker served a request, and in what
//! interleaving, is invisible too). Both must hold for the fleet's
//! results to mean anything.

use softbound::fleet::{self, Observation};
use softbound::{Engine, Facility, Lane, Program};

fn engines() -> Vec<(String, Engine)> {
    let mut out = Vec::new();
    for facility in [
        Facility::ShadowPaged,
        Facility::ShadowHashMap,
        Facility::HashTable,
        Facility::ShadowShared,
    ] {
        for lane in [Lane::Predecoded, Lane::TreeWalk] {
            out.push((
                format!("{facility:?}/{lane:?}"),
                Engine::new().facility(facility).lane(lane),
            ));
        }
    }
    out
}

/// The serial oracle: each request served by a brand-new instance, in
/// stream order, through the same `observe` path the pool uses.
fn serial_oracle(
    engine: &Engine,
    program: &Program,
    entry: &str,
    requests: &[i64],
) -> Vec<Observation> {
    requests
        .iter()
        .map(|&arg| fleet::observe(&mut engine.instantiate(program), entry, arg))
        .collect()
}

fn assert_fleet_matches_serial(
    engine: &Engine,
    program: &Program,
    entry: &str,
    requests: &[i64],
    workers: usize,
    label: &str,
) {
    let expected = serial_oracle(engine, program, entry, requests);
    let report = fleet::serve(engine, program, entry, requests, workers);
    assert_eq!(
        report.results.len(),
        requests.len(),
        "{label}: stream not fully served"
    );
    for (i, result) in report.results.iter().enumerate() {
        assert_eq!(result.index, i, "{label}: results not sorted by index");
        assert_eq!(
            result.observation, expected[i],
            "{label}: request {i} (arg {}) served by worker {} diverged from its serial run",
            requests[i], result.worker
        );
    }
    assert_eq!(
        report.per_worker.iter().map(|w| w.served).sum::<usize>(),
        requests.len(),
        "{label}: per-worker served counts do not cover the stream"
    );
}

#[test]
fn pooled_nhttpd_equals_serial_all_facilities_and_lanes() {
    let daemon = sb_workloads::daemons::all()
        .into_iter()
        .find(|d| d.name == "nhttpd")
        .expect("nhttpd daemon exists");
    let requests = sb_workloads::nhttpd_batches(8, 11);
    for (label, engine) in engines() {
        let program = engine.compile(daemon.source).expect("daemon compiles");
        assert_fleet_matches_serial(
            &engine,
            &program,
            "main",
            &requests,
            4,
            &format!("nhttpd/{label}"),
        );
    }
}

#[test]
fn pooled_trapping_traffic_equals_serial_all_facilities_and_lanes() {
    // Every third request overflows the handler's stack buffer: pooled
    // workers must report the identical trap (and identical counters)
    // the serial oracle reports, with safe requests undisturbed by a
    // neighbouring worker's trap.
    let requests = sb_workloads::mixed_traffic(9, 3, 5);
    assert!(requests.iter().any(|&l| l > 16), "stream must trap");
    assert!(
        requests.iter().any(|&l| l <= 16),
        "stream must also succeed"
    );
    for (label, engine) in engines() {
        let program = engine
            .compile(sb_workloads::MIXED_HANDLER)
            .expect("handler compiles");
        assert_fleet_matches_serial(
            &engine,
            &program,
            "main",
            &requests,
            4,
            &format!("mixed/{label}"),
        );
    }
}

#[test]
fn worker_count_is_invisible_to_observations() {
    // The same stream under pools of 1, 2, 3, and 7 workers: every pool
    // size must produce the same per-index observations (only latency
    // and worker attribution may differ).
    let engine = Engine::new();
    let program = engine
        .compile(sb_workloads::MIXED_HANDLER)
        .expect("handler compiles");
    let requests = sb_workloads::mixed_traffic(12, 4, 2);
    let baseline: Vec<Observation> = fleet::serve(&engine, &program, "main", &requests, 1)
        .results
        .into_iter()
        .map(|r| r.observation)
        .collect();
    for workers in [2usize, 3, 7] {
        let observed: Vec<Observation> =
            fleet::serve(&engine, &program, "main", &requests, workers)
                .results
                .into_iter()
                .map(|r| r.observation)
                .collect();
        assert_eq!(
            observed, baseline,
            "{workers}-worker pool diverged from the single-worker pool"
        );
    }
}

#[test]
fn reset_churn_under_pool_pressure_stays_deterministic() {
    // Stress the reset path the pool leans on: a long stream over few
    // workers forces every instance through many reset cycles with
    // different allocation layouts (batch sizes vary per request), and
    // interleaved explicit resets must not perturb subsequent requests.
    let daemon = sb_workloads::daemons::all()
        .into_iter()
        .find(|d| d.name == "tinyftp")
        .expect("tinyftp daemon exists");
    let engine = Engine::new();
    let program = engine.compile(daemon.source).expect("daemon compiles");
    let requests = sb_workloads::nhttpd_batches(24, 77);

    // Oracle: one reused instance with an explicit reset every few
    // requests (reuse invisibility is pinned by tests/instance_reuse.rs,
    // so this is equivalent to fresh machines — but exercises churn).
    let mut oracle_instance = engine.instantiate(&program);
    let expected: Vec<Observation> = requests
        .iter()
        .enumerate()
        .map(|(i, &arg)| {
            if i % 5 == 4 {
                oracle_instance.reset();
            }
            fleet::observe(&mut oracle_instance, "main", arg)
        })
        .collect();

    let report = fleet::serve(&engine, &program, "main", &requests, 3);
    for (i, result) in report.results.iter().enumerate() {
        assert_eq!(
            result.observation, expected[i],
            "request {i} diverged under pool churn"
        );
    }
}
