//! Whole-program differential proof of the devirtualized metadata path.
//!
//! The `SoftBoundRuntime<F>` / `Machine<H>` refactor replaced `Box<dyn>`
//! dispatch on the check path with monomorphized calls. Facility-level
//! unit tests cannot prove such a refactor behaviour-preserving, so this
//! suite runs *entire instrumented programs* — the evaluation workloads
//! and the BugBench violation programs — through every execution lane:
//!
//! 1. `SoftBoundRuntime<ShadowPages>` (static, the production path),
//! 2. `SoftBoundRuntime<ShadowHashMapFacility>` (static, oracle),
//! 3. `SoftBoundRuntime<HashTableFacility>` (static, §5.1 alternative),
//! 4. `DynRuntime` — `SoftBoundRuntime<Box<dyn MetadataFacility>>`,
//! 5. `Machine::new_dyn` over `Box<dyn RuntimeHooks>` (fully erased),
//! 6. (through 8.) lanes 1–3 again through the *pre-decoded* execution
//!    IR (`Machine::run_predecoded` over the `ExecModule` cached on the
//!    `Program`) — the flat dispatch loop with fused check+access
//!    superinstructions must be bit-identical to its tree-walk twin,
//! 9. (and 10.) `SoftBoundRuntime<SharedShadowPages>` — the process-wide
//!    shared-reservation facility — in both lanes; it shares the paged
//!    shadow's cost model, so it must match lane 1 on *every*
//!    observable, cycles and final memory included.
//!
//! Every lane must produce identical traps, program output, dynamic
//! check/metadata counts, runtime violation counters, live metadata, and
//! — for lanes sharing a cost model — identical cycles and final memory.

use sb_vm::{Machine, MachineConfig, Outcome, RuntimeHooks};
use softbound::{
    DynRuntime, Engine, EvidenceRecord, MetadataFacility, Program, SoftBoundConfig,
    SoftBoundRuntime, ViolationPolicy,
};

/// Everything a lane exposes for comparison.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    outcome: Outcome,
    output: String,
    checks: u64,
    meta_loads: u64,
    meta_stores: u64,
    rt_calls: u64,
    check_count: u64,
    violation_count: u64,
    live_entries: usize,
    /// Digest of the final simulated memory image.
    mem_hash: u64,
    /// Cost-model cycles — only comparable between lanes with identical
    /// facility costs, so it is split out of the facility-independent
    /// comparison below.
    cycles: u64,
}

fn observe<F: MetadataFacility>(
    program: &Program,
    rt: SoftBoundRuntime<F>,
    arg: i64,
    predecoded: bool,
) -> Observed {
    let mut machine = Machine::new(program.module(), MachineConfig::default(), rt);
    let r = if predecoded {
        machine.attach_exec(program.exec());
        machine.run_predecoded("main", &[arg])
    } else {
        machine.run("main", &[arg])
    };
    Observed {
        outcome: r.outcome,
        output: r.output,
        checks: r.stats.checks,
        meta_loads: r.stats.meta_loads,
        meta_stores: r.stats.meta_stores,
        rt_calls: r.stats.rt_calls,
        check_count: machine.hooks().check_count,
        violation_count: machine.hooks().violation_count,
        live_entries: machine.hooks().live_entries(),
        mem_hash: machine.mem.content_hash(),
        cycles: r.stats.cycles,
    }
}

/// The fully type-erased lane: hooks behind `Box<dyn RuntimeHooks>`, so
/// runtime counters are unreachable — compare machine-visible state only.
fn observe_erased(module: &sb_ir::Module, cfg: &SoftBoundConfig, arg: i64) -> Observed {
    let hooks: Box<dyn RuntimeHooks> = Box::new(DynRuntime::new(cfg));
    let mut machine = Machine::new_dyn(module, MachineConfig::default(), hooks);
    let r = machine.run("main", &[arg]);
    Observed {
        outcome: r.outcome,
        output: r.output,
        checks: r.stats.checks,
        meta_loads: r.stats.meta_loads,
        meta_stores: r.stats.meta_stores,
        rt_calls: r.stats.rt_calls,
        // Counters live behind the vtable; mirror the reference lane's
        // values so `PartialEq` compares only what this lane can see.
        check_count: 0,
        violation_count: 0,
        live_entries: 0,
        mem_hash: machine.mem.content_hash(),
        cycles: r.stats.cycles,
    }
}

/// Strips the fields the erased lane cannot observe.
fn erasable(o: &Observed) -> Observed {
    Observed {
        check_count: 0,
        violation_count: 0,
        live_entries: 0,
        ..o.clone()
    }
}

/// Strips the fields whose value legitimately depends on the facility's
/// cost model (hash lookups cost 9, shadow lookups 5).
fn cost_free(o: &Observed) -> Observed {
    Observed {
        cycles: 0,
        mem_hash: 0,
        ..o.clone()
    }
}

fn run_all_lanes(name: &str, source: &str, cfg: &SoftBoundConfig, arg: i64) -> Observed {
    let program = Engine::new()
        .softbound_config(cfg.clone())
        .compile(source)
        .expect("program compiles");
    let module = program.module();

    let paged = observe(&program, SoftBoundRuntime::new_paged(cfg), arg, false);
    let hashmap = observe(
        &program,
        SoftBoundRuntime::new_shadow_hashmap(cfg),
        arg,
        false,
    );
    let hashtable = observe(&program, SoftBoundRuntime::new_hash(cfg), arg, false);
    let dyn_facility = observe(&program, DynRuntime::new(cfg), arg, false);
    let erased = observe_erased(module, cfg, arg);

    // Lanes 6–8: the same three static facilities driven through the
    // pre-decoded execution IR. Each must match its tree-walk twin on
    // *every* observable — traps, output, all dynamic counters, runtime
    // counters, live metadata, cycles, and the final memory digest.
    let paged_exec = observe(&program, SoftBoundRuntime::new_paged(cfg), arg, true);
    let hashmap_exec = observe(
        &program,
        SoftBoundRuntime::new_shadow_hashmap(cfg),
        arg,
        true,
    );
    let hashtable_exec = observe(&program, SoftBoundRuntime::new_hash(cfg), arg, true);
    assert_eq!(
        paged, paged_exec,
        "{name}: paged tree-walk vs pre-decoded diverged"
    );
    assert_eq!(
        hashmap, hashmap_exec,
        "{name}: hashmap tree-walk vs pre-decoded diverged"
    );
    assert_eq!(
        hashtable, hashtable_exec,
        "{name}: hash-table tree-walk vs pre-decoded diverged"
    );

    // Lanes 9–10: the shared-reservation shadow. Same packed pages,
    // same cost model, host-side directory shared across the process —
    // nothing observable may differ from the private paged lane.
    let shared = observe(&program, SoftBoundRuntime::new_shared(cfg), arg, false);
    let shared_exec = observe(&program, SoftBoundRuntime::new_shared(cfg), arg, true);
    assert_eq!(
        shared, shared_exec,
        "{name}: shared tree-walk vs pre-decoded diverged"
    );
    assert_eq!(
        paged, shared,
        "{name}: paged vs shared-reservation shadow diverged"
    );

    // The two shadow organizations share the cost model and write the
    // same simulated memory: every observable must match bit-for-bit.
    assert_eq!(paged, hashmap, "{name}: paged vs hashmap shadow diverged");
    // The dyn-facility wrapper hosts the *paged* facility (the config
    // default): it must match the static paged lane exactly — dispatch
    // must never change behaviour, cost, or memory.
    assert_eq!(paged, dyn_facility, "{name}: static vs DynRuntime diverged");
    assert_eq!(
        erasable(&paged),
        erased,
        "{name}: static vs Machine::new_dyn diverged"
    );
    // The hash table costs more per lookup (9 vs 5 instructions, plus
    // probes) and may map different simulated-table pages, but traps,
    // output, and every dynamic count must be identical.
    assert_eq!(
        cost_free(&paged),
        cost_free(&hashtable),
        "{name}: shadow vs hash table diverged"
    );
    assert!(
        hashtable.cycles >= paged.cycles,
        "{name}: hash table ({}) cheaper than shadow space ({})?",
        hashtable.cycles,
        paged.cycles
    );
    paged
}

#[test]
fn safe_workloads_identical_across_all_lanes() {
    // A class-spanning subset of the evaluation workloads (debug-mode
    // friendly): two array kernels, two list/tree kernels, one
    // allocation-churn kernel.
    let picks = ["compress", "ijpeg", "tsp", "treeadd", "health"];
    let cfg = SoftBoundConfig::full_shadow();
    for name in picks {
        let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
        let o = run_all_lanes(w.name, w.source, &cfg, w.default_arg);
        assert!(
            matches!(o.outcome, Outcome::Finished { .. }),
            "{name}: {:?}",
            o.outcome
        );
        assert_eq!(o.violation_count, 0, "{name}: false positive");
        assert!(o.checks > 0, "{name}: nothing was checked");
        assert_eq!(
            o.check_count, o.checks,
            "{name}: VM and runtime disagree on executed checks"
        );
    }
}

#[test]
fn store_only_mode_identical_across_all_lanes() {
    let cfg = SoftBoundConfig::store_only_shadow();
    for name in ["compress", "treeadd"] {
        let w = sb_workloads::benchmark_by_name(name).expect("workload exists");
        let o = run_all_lanes(w.name, w.source, &cfg, w.default_arg);
        assert!(
            matches!(o.outcome, Outcome::Finished { .. }),
            "{name}: {:?}",
            o.outcome
        );
        assert_eq!(o.violation_count, 0, "{name}: false positive");
    }
}

#[test]
fn violating_programs_trap_identically_across_all_lanes() {
    // The BugBench programs each trigger a real spatial violation; every
    // lane must report the same trap at the same point (identical counts
    // mean the trap fired after the same number of checks).
    let cfg = SoftBoundConfig::full_shadow();
    for bug in sb_workloads::bugbench::all() {
        let o = run_all_lanes(bug.name, bug.source, &cfg, 0);
        assert!(
            o.outcome.is_spatial_violation(),
            "{}: expected a spatial violation, got {:?}",
            bug.name,
            o.outcome
        );
        // Overflows caught by the libc wrappers (scheme
        // "softbound-wrapper", e.g. polymorph's strcpy) trap inside the
        // VM builtin before reaching the runtime's counter; explicit
        // checks must tick it.
        let wrapper_trap = matches!(
            &o.outcome,
            Outcome::Trapped(sb_vm::Trap::SpatialViolation {
                scheme: "softbound-wrapper",
                ..
            })
        );
        assert!(
            wrapper_trap || o.violation_count >= 1,
            "{}: runtime recorded no violation ({:?})",
            bug.name,
            o.outcome
        );
    }
}

#[test]
fn policy_behavior_invariant_across_facilities_and_lanes() {
    // The violation policy is a runtime-side property: what each policy
    // *does* on the same overflow — trap, clamp, or observe — and the
    // evidence it records must be identical across all three metadata
    // facilities and both execution lanes.
    let src = r#"
        int main(int n) {
            char* p = (char*)malloc(16);
            for (int i = 0; i <= n; i = i + 1) p[i] = (char)i;
            int sum = 0;
            for (int i = 0; i < 16; i = i + 1) sum = sum + p[i];
            return sum;
        }
    "#;
    #[derive(Debug, PartialEq)]
    struct PolicyObs {
        outcome: Outcome,
        output: String,
        violation_count: u64,
        evidence: Vec<EvidenceRecord>,
    }
    fn policy_obs<F: MetadataFacility>(
        program: &Program,
        rt: SoftBoundRuntime<F>,
        predecoded: bool,
    ) -> PolicyObs {
        let mut machine = Machine::new(program.module(), MachineConfig::default(), rt);
        let r = if predecoded {
            machine.attach_exec(program.exec());
            machine.run_predecoded("main", &[16])
        } else {
            machine.run("main", &[16])
        };
        PolicyObs {
            outcome: r.outcome,
            output: r.output,
            violation_count: machine.hooks().violation_count,
            evidence: machine.hooks_mut().drain_evidence(),
        }
    }
    for policy in [
        ViolationPolicy::Strict,
        ViolationPolicy::Hardened,
        ViolationPolicy::Monitor,
    ] {
        let mut cfg = SoftBoundConfig::full_shadow();
        cfg.policy = policy;
        let program = Engine::new()
            .softbound_config(cfg.clone())
            .compile(src)
            .expect("compiles");
        let reference = policy_obs(&program, SoftBoundRuntime::new_paged(&cfg), false);
        for (lane, obs) in [
            (
                "paged/pre",
                policy_obs(&program, SoftBoundRuntime::new_paged(&cfg), true),
            ),
            (
                "hashmap/tree",
                policy_obs(&program, SoftBoundRuntime::new_shadow_hashmap(&cfg), false),
            ),
            (
                "hashmap/pre",
                policy_obs(&program, SoftBoundRuntime::new_shadow_hashmap(&cfg), true),
            ),
            (
                "hash/tree",
                policy_obs(&program, SoftBoundRuntime::new_hash(&cfg), false),
            ),
            (
                "hash/pre",
                policy_obs(&program, SoftBoundRuntime::new_hash(&cfg), true),
            ),
            (
                "shared/tree",
                policy_obs(&program, SoftBoundRuntime::new_shared(&cfg), false),
            ),
            (
                "shared/pre",
                policy_obs(&program, SoftBoundRuntime::new_shared(&cfg), true),
            ),
        ] {
            assert_eq!(
                reference, obs,
                "{policy:?}: {lane} diverged from paged/tree"
            );
        }
        match policy {
            ViolationPolicy::Strict => {
                assert!(
                    reference.outcome.is_spatial_violation(),
                    "strict must trap: {:?}",
                    reference.outcome
                );
                assert!(reference.evidence.is_empty());
            }
            ViolationPolicy::Hardened => {
                // The clamped store is dropped; the in-bounds sum is
                // unaffected, so the run finishes.
                assert!(
                    matches!(reference.outcome, Outcome::Finished { .. }),
                    "hardened must finish: {:?}",
                    reference.outcome
                );
                assert_eq!(reference.evidence.len(), 1);
                assert!(reference.evidence[0].write);
            }
            ViolationPolicy::Monitor => {
                assert!(
                    matches!(reference.outcome, Outcome::Finished { .. }),
                    "monitor must finish: {:?}",
                    reference.outcome
                );
                assert_eq!(reference.evidence.len(), 1);
                assert_eq!(reference.violation_count, 1);
            }
        }
    }
}

#[test]
fn wraparound_pointers_trap_in_whole_programs() {
    // End-to-end regression for the `ptr + size` wraparound hole. The
    // pointer must carry *live* metadata (an int-to-pointer cast would
    // get NULL bounds and trap on the `base == 0` clause even before
    // the fix), so a valid allocation is walked via pointer arithmetic
    // to address u64::MAX: ptr >= base holds, and the old
    // `ptr.wrapping_add(size) > bound` wrapped `MAX + 1` to 0 <= bound,
    // passing the check and leaving a wild access (MemFault). The fixed
    // check must report a spatial violation in every lane.
    let src = r#"
        int main() {
            char* p = (char*)malloc(16);
            long k = -(long)p - 1;   // p + k == 0xffff_ffff_ffff_ffff
            char* q = p + k;         // GEP: metadata of p survives
            return *q;
        }
    "#;
    let cfg = SoftBoundConfig::full_shadow();
    let o = run_all_lanes("wraparound", src, &cfg, 0);
    assert!(
        o.outcome.is_spatial_violation(),
        "forged near-MAX pointer must trap, got {:?}",
        o.outcome
    );
}
