//! Property-based differential testing of the whole pipeline.
//!
//! Random CIR-C pointer programs are generated from a safe-by-construction
//! grammar (array writes/reads with in-bounds indices, interior pointers,
//! pointer arithmetic, malloc'd buffers, struct fields). Properties:
//!
//! 1. **No false positives** — every SoftBound configuration runs the safe
//!    program to completion with the same checksum as the unprotected run.
//! 2. **No false negatives** — injecting a single out-of-bounds *write*
//!    anywhere makes every configuration abort with a spatial violation
//!    (the store-only guarantee of §6.2); an out-of-bounds *read* is
//!    caught by the full configurations.

use proptest::prelude::*;
use softbound::SoftBoundConfig;

/// A safe-by-construction program recipe.
#[derive(Debug, Clone)]
struct Recipe {
    /// Global array size (4..=32).
    glob_size: u64,
    /// Stack array size (4..=32).
    stack_size: u64,
    /// Heap allocation size in ints (4..=32).
    heap_size: u64,
    /// Operations: (kind, target selector, raw index material).
    ops: Vec<(u8, u8, u64)>,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (
        4u64..=32,
        4u64..=32,
        4u64..=32,
        prop::collection::vec((0u8..6, 0u8..3, any::<u64>()), 1..25),
    )
        .prop_map(|(glob_size, stack_size, heap_size, ops)| Recipe {
            glob_size,
            stack_size,
            heap_size,
            ops,
        })
}

/// Renders a recipe as a CIR-C program. When `oob` is set, operation
/// `oob.0 % ops.len()` is made out of bounds by `oob.1` mode
/// (0 = write past end, 1 = read past end, 2 = write before start).
fn render(r: &Recipe, oob: Option<(usize, u8)>) -> String {
    let mut body = String::new();
    let arrays = [("g", r.glob_size), ("s", r.stack_size), ("h", r.heap_size)];
    for (i, (kind, tgt, raw)) in r.ops.iter().enumerate() {
        let (name, size) = arrays[(*tgt as usize) % 3];
        let idx = raw % size;
        let this_oob = oob.filter(|(at, _)| *at == i % r.ops.len()).map(|(_, m)| m);
        match this_oob {
            Some(0) => {
                body.push_str(&format!("    {name}[{size}] = 1; // OOB write\n"));
            }
            Some(1) => {
                body.push_str(&format!("    sum += {name}[{size}]; // OOB read\n"));
            }
            Some(_) => {
                body.push_str(&format!(
                    "    {{ int* p = &{name}[0]; p[-1] = 2; }} // OOB underflow write\n"
                ));
            }
            None => match kind % 6 {
                0 => body.push_str(&format!("    {name}[{idx}] = (int)(sum % 97 + {idx});\n")),
                1 => body.push_str(&format!("    sum += {name}[{idx}];\n")),
                2 => {
                    // Interior pointer walk, kept in bounds.
                    let span = size - idx;
                    body.push_str(&format!(
                        "    {{ int* p = &{name}[{idx}]; for (int k = 0; k < {span}; k++) sum += p[k]; }}\n"
                    ));
                }
                3 => {
                    body.push_str(&format!(
                        "    {{ int* p = {name}; p = p + {idx}; *p = (int)(sum & 31); }}\n"
                    ));
                }
                4 => {
                    // One-past-the-end pointer created but not dereferenced.
                    body.push_str(&format!(
                        "    {{ int* e = {name} + {size}; sum += (int)(e - {name}); }}\n"
                    ));
                }
                _ => {
                    body.push_str(&format!(
                        "    {{ char* c = (char*){name}; sum += c[{b}]; }}\n",
                        b = (raw % (size * 4)),
                    ));
                }
            },
        }
    }
    format!(
        r#"
int g[{glob}];
int main() {{
    long sum = 0;
    int s[{stack}];
    int* h = (int*)malloc({heap} * sizeof(int));
    for (int i = 0; i < {glob}; i++) g[i] = i;
    for (int i = 0; i < {stack}; i++) s[i] = i * 2;
    for (int i = 0; i < {heap}; i++) h[i] = i * 3;
{body}
    free(h);
    return (int)(sum % 100000);
}}
"#,
        glob = r.glob_size,
        stack = r.stack_size,
        heap = r.heap_size,
        body = body
    )
}

fn all_configs() -> Vec<SoftBoundConfig> {
    vec![
        SoftBoundConfig::full_shadow(),
        SoftBoundConfig::full_hash(),
        SoftBoundConfig::store_only_shadow(),
        SoftBoundConfig::store_only_hash(),
    ]
}

/// One-shot protected run through the session API: each proptest case is
/// a fresh program, so there is no instance worth keeping alive.
fn protect_once(src: &str, cfg: &SoftBoundConfig) -> sb_vm::RunResult {
    softbound::Engine::new()
        .softbound_config(cfg.clone())
        .run_once(src, "main", &[])
        .expect("compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn safe_programs_have_no_false_positives(r in recipe_strategy()) {
        let src = render(&r, None);
        let plain = sb_vm::run_source(&src, "main", &[]);
        let expected = plain.ret();
        prop_assert!(expected.is_some(), "safe program must finish: {:?}\n{src}", plain.outcome);
        for cfg in all_configs() {
            let p = protect_once(&src, &cfg);
            prop_assert_eq!(
                p.ret(), expected,
                "{} diverged ({:?})\n{}", cfg.label(), p.outcome, src
            );
        }
    }

    #[test]
    fn injected_oob_writes_always_caught(r in recipe_strategy(), at in any::<usize>(), mode in 0u8..3) {
        let src = render(&r, Some((at % r.ops.len(), if mode == 1 { 0 } else { mode })));
        // (mode 1 = read is tested separately; here only writes)
        for cfg in all_configs() {
            let p = protect_once(&src, &cfg);
            prop_assert!(
                p.outcome.is_spatial_violation(),
                "{} missed injected OOB write: {:?}\n{}", cfg.label(), p.outcome, src
            );
        }
    }

    #[test]
    fn injected_oob_reads_caught_by_full(r in recipe_strategy(), at in any::<usize>()) {
        let src = render(&r, Some((at % r.ops.len(), 1)));
        for cfg in [SoftBoundConfig::full_shadow(), SoftBoundConfig::full_hash()] {
            let p = protect_once(&src, &cfg);
            prop_assert!(
                p.outcome.is_spatial_violation(),
                "{} missed injected OOB read: {:?}\n{}", cfg.label(), p.outcome, src
            );
        }
        // Store-only mode, by design, lets the read through (Table 4 `go`).
        let s = protect_once(&src, &SoftBoundConfig::store_only_shadow());
        prop_assert!(
            !s.outcome.is_spatial_violation(),
            "store-only unexpectedly caught a read: {src}"
        );
    }
}
