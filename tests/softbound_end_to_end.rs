//! End-to-end integration tests: CIR-C source → lower → optimize →
//! SoftBound instrument → re-optimize → execute under each metadata
//! facility and checking mode.
//!
//! These tests pin the paper's core claims: no false positives on correct
//! programs (§6.4), complete detection of spatial violations in full mode
//! (§6.2), store-overflow detection (and load-overflow blindness) in
//! store-only mode (Table 4), sub-object overflow detection (§2.1/§3.1),
//! and wild-cast safety (§3.4).

use sb_vm::{Outcome, Trap};
use softbound::{Engine, SoftBoundConfig};

/// One-shot protected run through the session API — every test here
/// compiles a distinct program, so no instance outlives its run.
fn protect(src: &str, cfg: &SoftBoundConfig) -> sb_vm::RunResult {
    Engine::new()
        .softbound_config(cfg.clone())
        .run_once(src, "main", &[])
        .expect("compiles")
}

fn all_configs() -> Vec<SoftBoundConfig> {
    vec![
        SoftBoundConfig::full_shadow(),
        SoftBoundConfig::full_hash(),
        SoftBoundConfig::store_only_shadow(),
        SoftBoundConfig::store_only_hash(),
    ]
}

fn full_configs() -> Vec<SoftBoundConfig> {
    vec![SoftBoundConfig::full_shadow(), SoftBoundConfig::full_hash()]
}

/// Asserts the program runs to completion with `expected` under every
/// configuration — the no-false-positives property.
fn assert_safe(src: &str, expected: i64) {
    for cfg in all_configs() {
        let r = protect(src, &cfg);
        assert_eq!(
            r.ret(),
            Some(expected),
            "false positive or wrong result under {} : {:?}\noutput: {}",
            cfg.label(),
            r.outcome,
            r.output
        );
    }
}

fn assert_violation(src: &str, cfgs: &[SoftBoundConfig]) {
    for cfg in cfgs {
        let r = protect(src, cfg);
        assert!(
            r.outcome.is_spatial_violation(),
            "expected spatial violation under {}, got {:?}",
            cfg.label(),
            r.outcome
        );
    }
}

#[test]
fn safe_array_sum() {
    assert_safe(
        r#"
        int main() {
            int a[64];
            for (int i = 0; i < 64; i++) a[i] = i;
            int s = 0;
            for (int i = 0; i < 64; i++) s += a[i];
            return s == 2016;
        }"#,
        1,
    );
}

#[test]
fn safe_linked_list() {
    assert_safe(
        r#"
        struct node { int v; struct node* next; };
        int main() {
            struct node* head = NULL;
            for (int i = 0; i < 100; i++) {
                struct node* n = (struct node*)malloc(sizeof(struct node));
                n->v = i;
                n->next = head;
                head = n;
            }
            long s = 0;
            for (struct node* p = head; p != NULL; p = p->next) s += p->v;
            while (head) { struct node* t = head->next; free(head); head = t; }
            return s == 4950;
        }"#,
        1,
    );
}

#[test]
fn safe_string_handling() {
    assert_safe(
        r#"
        int main() {
            char buf[32];
            strcpy(buf, "hello");
            strcat(buf, ", world");
            return (int)strlen(buf) == 12 && strcmp(buf, "hello, world") == 0;
        }"#,
        1,
    );
}

#[test]
fn safe_function_pointers() {
    assert_safe(
        r#"
        int dbl(int x) { return 2 * x; }
        int neg(int x) { return -x; }
        int main() {
            int (*ops[2])(int);
            ops[0] = dbl;
            ops[1] = neg;
            int s = 0;
            for (int i = 0; i < 2; i++) s += ops[i](21);
            return s == 21;
        }"#,
        1,
    );
}

#[test]
fn safe_wild_casts() {
    // §3.4: disjoint metadata makes arbitrary casts safe — and the casts
    // must not produce false positives for in-bounds accesses.
    assert_safe(
        r#"
        int main() {
            long x[4];
            char* c = (char*)x;
            int* ip = (int*)(c + 4);
            *ip = 0x41424344;
            long l = (long)ip;
            int* back = (int*)l;  // int-to-pointer: NULL bounds...
            back = (int*)setbound((void*)l, 4); // ...restored via setbound
            return *back == 0x41424344;
        }"#,
        1,
    );
}

#[test]
fn safe_memcpy_with_pointers() {
    assert_safe(
        r#"
        struct holder { char* p; long n; };
        int main() {
            char data[8];
            data[0] = 'z';
            struct holder a;
            struct holder b;
            a.p = data;
            a.n = 1;
            memcpy(&b, &a, sizeof(struct holder));
            return b.p[0] == 'z'; // metadata must have been copied
        }"#,
        1,
    );
}

#[test]
fn safe_pointer_returned_through_functions() {
    assert_safe(
        r#"
        char* pick(char* a, char* b, int which) { return which ? a : b; }
        int main() {
            char x[4]; char y[4];
            x[0] = 1; y[0] = 2;
            char* p = pick(x, y, 1);
            return p[0] == 1;
        }"#,
        1,
    );
}

#[test]
fn heap_write_overflow_detected_all_modes() {
    assert_violation(
        r#"
        int main() {
            int* p = (int*)malloc(10 * sizeof(int));
            for (int i = 0; i <= 10; i++) p[i] = i; // one past the end
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn stack_write_overflow_detected_all_modes() {
    assert_violation(
        r#"
        int main() {
            char buf[8];
            for (int i = 0; i < 9; i++) buf[i] = 'A';
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn global_write_overflow_detected_all_modes() {
    assert_violation(
        r#"
        int g[4];
        int main() {
            for (int i = 0; i < 5; i++) g[i] = i;
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn read_overflow_detected_in_full_missed_in_store_only() {
    let src = r#"
        int main() {
            int a[8];
            a[0] = 1;
            int s = 0;
            for (int i = 0; i < 10; i++) s += a[i]; // read overflow
            return s >= 0 || s < 0;
        }
    "#;
    assert_violation(src, &full_configs());
    for cfg in [
        SoftBoundConfig::store_only_shadow(),
        SoftBoundConfig::store_only_hash(),
    ] {
        let r = protect(src, &cfg);
        assert_eq!(
            r.ret(),
            Some(1),
            "store-only mode must miss read overflows (Table 4 'go'), got {:?}",
            r.outcome
        );
    }
}

#[test]
fn sub_object_overflow_detected() {
    // The §2.1 motivating example: object-based tools cannot see this.
    assert_violation(
        r#"
        struct node { char str[8]; void (*func)(void); };
        void noop(void) { }
        int main() {
            struct node n;
            n.func = noop;
            char* ptr = n.str;
            strcpy(ptr, "overflow...");
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn negative_index_underflow_detected() {
    assert_violation(
        r#"
        int main() {
            int a[8];
            int* p = &a[0];
            p[-1] = 5;
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn out_of_bounds_pointer_creation_is_legal_until_deref() {
    // §3.1: C allows creating out-of-bounds pointers; only dereference
    // must trap.
    assert_safe(
        r#"
        int main() {
            int a[8];
            int* end = a + 8;     // one past the end: legal
            int* wild = a + 100;  // far out: still legal to create
            int* back = wild - 100;
            *back = 7;            // in bounds again
            return a[0] == 7 && (end - a) == 8;
        }"#,
        1,
    );
}

#[test]
fn int_to_pointer_cast_gets_null_bounds() {
    for cfg in full_configs() {
        let r = protect(
            r#"
            int main() {
                long addr = 0x10000;
                int* p = (int*)addr;
                return *p;
            }"#,
            &cfg,
        );
        assert!(
            r.outcome.is_spatial_violation(),
            "forged pointer dereference must abort, got {:?}",
            r.outcome
        );
    }
}

#[test]
fn corrupted_function_pointer_via_wild_write_caught() {
    // Write the function pointer through an int* alias (in-bounds, wild
    // cast): SbFnCheck rejects the forged value since its metadata is not
    // the zero-sized function encoding.
    for cfg in full_configs() {
        let r = protect(
            r#"
            void evil(void) { exit(66); }
            int main() {
                void (*fp)(void);
                long* alias = (long*)&fp;
                *alias = (long)&evil + 0; // integer write: metadata NULLed? No —
                                          // the slot metadata is overwritten by an
                                          // integer store... the pointer load sees
                                          // stale or NULL metadata; FnCheck fires.
                fp();
                return 0;
            }"#,
            &cfg,
        );
        assert!(
            r.outcome.is_spatial_violation(),
            "forged function pointer must be rejected, got {:?}",
            r.outcome
        );
    }
}

#[test]
fn stale_metadata_cleared_on_free_prevents_use_after_realloc_confusion() {
    // After free+realloc of the same address, old metadata must not grant
    // wider bounds than the new allocation.
    assert_violation(
        r#"
        struct big { char* p; char pad[56]; };
        int main() {
            struct big* a = (struct big*)malloc(sizeof(struct big));
            a->p = (char*)a; // pointer stored: metadata for slot written
            free(a);
            // Same class size -> same address reused for a smaller view.
            char** b = (char**)malloc(8);
            char* q = *b;    // reads slot: metadata must be cleared (NULL)
            q[0] = 'x';      // must trap, not use stale [a, a+64) bounds
            return 0;
        }"#,
        &full_configs(),
    );
}

#[test]
fn separate_compilation_links_and_runs_protected() {
    // Transform two modules independently, link, run: the paper's
    // separate-compilation claim (§5.2, Table 1).
    let lib_src = r#"
        int sum(int* xs, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += xs[i];
            return s;
        }
    "#;
    let app_src = r#"
        int sum(int* xs, int n);
        int main() {
            int a[16];
            for (int i = 0; i < 16; i++) a[i] = i;
            return sum(a, 16) == 120;
        }
    "#;
    let cfg = SoftBoundConfig::default();
    let compile_one = |src: &str, name: &str| {
        let prog = sb_cir::compile(src).expect("compiles");
        let mut m = sb_ir::lower(&prog, name);
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
        let mut m = softbound::instrument(&m, &cfg);
        sb_ir::optimize(&mut m, sb_ir::OptLevel::PostInstrument);
        m
    };
    let lib = compile_one(lib_src, "lib");
    let app = compile_one(app_src, "app");
    let linked = sb_ir::link(&[app, lib], "prog").expect("links");
    sb_ir::verify(&linked).expect("verifies");
    let engine = Engine::new().softbound_config(cfg.clone());
    let r = engine.instantiate_module(&linked).run("main", &[]);
    assert_eq!(
        r.ret(),
        Some(1),
        "linked protected program runs: {:?}",
        r.outcome
    );

    // And the protection crosses the module boundary: passing a short
    // array into the library's loop still traps.
    let bad_app = r#"
        int sum(int* xs, int n);
        int main() {
            int a[4];
            return sum(a, 16); // library reads past the caller's array
        }
    "#;
    let app2 = compile_one(bad_app, "app");
    let lib2 = compile_one(lib_src, "lib");
    let linked2 = sb_ir::link(&[app2, lib2], "prog").expect("links");
    let r2 = engine.instantiate_module(&linked2).run("main", &[]);
    assert!(
        r2.outcome.is_spatial_violation(),
        "bounds must travel across separately compiled modules, got {:?}",
        r2.outcome
    );
}

#[test]
fn global_pointer_initializers_have_bounds() {
    assert_safe(
        r#"
        int table[8] = {1,2,3,4,5,6,7,8};
        int* cursor = &table[0];
        char* msg = "hi";
        int main() {
            int s = 0;
            for (int i = 0; i < 8; i++) s += cursor[i];
            return s == 36 && msg[0] == 'h';
        }"#,
        1,
    );
    // ...and the bounds are the real object bounds:
    assert_violation(
        r#"
        int table[8];
        int* cursor = &table[0];
        int main() {
            cursor[8] = 1; // past the end of table
            return 0;
        }"#,
        &all_configs(),
    );
}

#[test]
fn vararg_over_decode_trapped() {
    for cfg in full_configs() {
        let r = protect(
            r#"
            int sum_all(int n, ...) {
                int s = 0;
                for (int i = 0; i < n; i++) s += (int)va_arg_long(i);
                return s;
            }
            int main() { return sum_all(5, 1, 2); } // lies about the count
            "#,
            &cfg,
        );
        assert!(
            r.outcome.is_spatial_violation(),
            "decoding more varargs than passed must trap (§5.2), got {:?}",
            r.outcome
        );
    }
}

#[test]
fn overhead_ordering_is_sane() {
    // Relative cost-model sanity for one pointer-heavy workload:
    // uninstrumented < store-only(shadow) < full(shadow) < full(hash).
    let src = r#"
        struct node { int v; struct node* next; };
        int main() {
            struct node* head = NULL;
            for (int i = 0; i < 400; i++) {
                struct node* n = (struct node*)malloc(sizeof(struct node));
                n->v = i; n->next = head; head = n;
            }
            long s = 0;
            for (int pass = 0; pass < 10; pass++)
                for (struct node* p = head; p; p = p->next) s += p->v;
            return s > 0;
        }
    "#;
    let base = sb_vm::run_source(src, "main", &[]);
    assert_eq!(base.ret(), Some(1));
    let cycles = |cfg: &SoftBoundConfig| {
        let r = protect(src, cfg);
        assert_eq!(r.ret(), Some(1), "{}: {:?}", cfg.label(), r.outcome);
        r.stats.cycles
    };
    let store_shadow = cycles(&SoftBoundConfig::store_only_shadow());
    let full_shadow = cycles(&SoftBoundConfig::full_shadow());
    let full_hash = cycles(&SoftBoundConfig::full_hash());
    assert!(base.stats.cycles < store_shadow);
    assert!(store_shadow < full_shadow);
    assert!(
        full_shadow < full_hash,
        "hash table must cost more than shadow space"
    );
}

#[test]
fn no_hijack_possible_under_softbound() {
    // The uninstrumented run is hijacked; every SoftBound mode stops it.
    let src = r#"
        void evil(void) { exit(66); }
        void vulnerable(long target) {
            long buf[2];
            long* p = buf;
            for (int i = 0; i < 6; i++) p[i] = target;
        }
        int main() { vulnerable((long)&evil); return 0; }
    "#;
    let plain = sb_vm::run_source(src, "main", &[]);
    assert!(
        matches!(plain.outcome, Outcome::Hijacked { .. }),
        "{:?}",
        plain.outcome
    );
    assert_violation(src, &all_configs());
}

#[test]
fn memfault_trap_distinct_from_violation() {
    // Sanity: an unmapped wild store in an *uninstrumented* run is a
    // MemFault, not a spatial violation.
    let r = sb_vm::run_source(
        "int main() { *(int*)123456789 = 1; return 0; }",
        "main",
        &[],
    );
    assert!(matches!(r.outcome, Outcome::Trapped(Trap::MemFault { .. })));
}
