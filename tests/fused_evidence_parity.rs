//! Regression: under the continuing violation policies, fused
//! check+access superinstructions must record exactly the evidence
//! their unfused twins record.
//!
//! This mirrors `fused_trap_parity.rs` for the Hardened and Monitor
//! policies: the same page-straddling 1-byte overflow, but instead of
//! comparing trap addresses the oracle compares the full
//! [`EvidenceRecord`] stream — pointer, fault address, bounds, access
//! size, direction, repair action, and dynamic PC — across every
//! facility and both execution lanes. A fused path that clamped at page
//! granularity, skipped the evidence hook, or stamped a different PC
//! would diverge here.
//!
//! The last test pins the shared fault-address convention: a wrapper
//! violation (builtin `memcpy`) and an explicit-check violation on the
//! same object must both name the *first out-of-bounds byte*.

use sb_vm::{Machine, MachineConfig, Outcome, HEAP_BASE};
use softbound::{
    Engine, EvidenceRecord, MetadataFacility, PolicyAction, Program, SoftBoundConfig,
    SoftBoundRuntime, ViolationPolicy,
};

const STORE_STRADDLE: &str = r#"
    int main(int n) {
        char* p = (char*)malloc(4096);
        for (int i = 0; i < 4096; i += 512) p[i] = (char)(i / 512 + 1);
        p[n] = 7;
        return p[0];
    }
"#;

const LOAD_STRADDLE: &str = r#"
    int main(int n) {
        char* p = (char*)malloc(4096);
        for (int i = 0; i < 4096; i += 512) p[i] = (char)(i / 512 + 1);
        return p[n];
    }
"#;

#[derive(Debug, PartialEq)]
struct PolicyObs {
    outcome: Outcome,
    output: String,
    violation_count: u64,
    evidence: Vec<EvidenceRecord>,
}

fn observe<F: MetadataFacility>(
    program: &Program,
    rt: SoftBoundRuntime<F>,
    arg: i64,
    predecoded: bool,
) -> PolicyObs {
    let mut machine = Machine::new(program.module(), MachineConfig::default(), rt);
    let r = if predecoded {
        machine.attach_exec(program.exec());
        machine.run_predecoded("main", &[arg])
    } else {
        machine.run("main", &[arg])
    };
    PolicyObs {
        outcome: r.outcome,
        output: r.output,
        violation_count: machine.hooks().violation_count,
        evidence: machine.hooks_mut().drain_evidence(),
    }
}

fn compiled(source: &str, policy: ViolationPolicy) -> (Program, SoftBoundConfig) {
    let mut cfg = SoftBoundConfig::full_shadow();
    cfg.policy = policy;
    let program = Engine::new()
        .softbound_config(cfg.clone())
        .compile(source)
        .expect("compiles");
    // The fused path must actually be on trial.
    assert!(
        program.exec().fused_checks > 0,
        "no check+access pairs were fused — the regression tests nothing"
    );
    (program, cfg)
}

/// Runs all 3 facilities × 2 lanes and asserts every observation equals
/// the paged tree-walk reference, which is returned.
fn parity_reference(program: &Program, cfg: &SoftBoundConfig, arg: i64) -> PolicyObs {
    let reference = observe(program, SoftBoundRuntime::new_paged(cfg), arg, false);
    for (lane, obs) in [
        (
            "paged/pre",
            observe(program, SoftBoundRuntime::new_paged(cfg), arg, true),
        ),
        (
            "hashmap/tree",
            observe(
                program,
                SoftBoundRuntime::new_shadow_hashmap(cfg),
                arg,
                false,
            ),
        ),
        (
            "hashmap/pre",
            observe(
                program,
                SoftBoundRuntime::new_shadow_hashmap(cfg),
                arg,
                true,
            ),
        ),
        (
            "hash/tree",
            observe(program, SoftBoundRuntime::new_hash(cfg), arg, false),
        ),
        (
            "hash/pre",
            observe(program, SoftBoundRuntime::new_hash(cfg), arg, true),
        ),
    ] {
        assert_eq!(reference, obs, "{lane} diverged from paged/tree");
    }
    reference
}

#[test]
fn fused_store_clamp_records_identical_evidence_across_lanes() {
    let (program, cfg) = compiled(STORE_STRADDLE, ViolationPolicy::Hardened);
    let o = parity_reference(&program, &cfg, 4096);
    // The clamped store is dropped entirely, so the run finishes with
    // the object intact.
    assert_eq!(
        o.outcome,
        Outcome::Finished { ret: 1 },
        "clamped run must finish"
    );
    assert_eq!(o.evidence.len(), 1);
    let ev = o.evidence[0];
    assert_eq!(ev.ptr, HEAP_BASE + 4096);
    assert_eq!(ev.fault_addr, HEAP_BASE + 4096, "first OOB byte");
    assert_eq!((ev.base, ev.bound), (HEAP_BASE, HEAP_BASE + 4096));
    assert_eq!(ev.size, 1);
    assert!(ev.write);
    assert_eq!(ev.action, PolicyAction::ClampedWrite);
}

#[test]
fn fused_load_zero_fill_records_identical_evidence_across_lanes() {
    let (program, cfg) = compiled(LOAD_STRADDLE, ViolationPolicy::Hardened);
    let o = parity_reference(&program, &cfg, 4096);
    // The out-of-bounds read is zero-filled, so main returns 0.
    assert_eq!(o.outcome, Outcome::Finished { ret: 0 });
    assert_eq!(o.evidence.len(), 1);
    let ev = o.evidence[0];
    assert_eq!(ev.fault_addr, HEAP_BASE + 4096);
    assert!(!ev.write);
    assert_eq!(ev.action, PolicyAction::ZeroedRead);
}

#[test]
fn fused_monitor_observation_is_identical_across_lanes() {
    let (program, cfg) = compiled(STORE_STRADDLE, ViolationPolicy::Monitor);
    let o = parity_reference(&program, &cfg, 4096);
    // Monitor performs the stray store (here into the unmapped page
    // past the object, so the run ends in a uniform memory fault — the
    // same one the uninstrumented program would hit). What it must
    // never do is trap spatially.
    assert!(
        !o.outcome.is_spatial_violation(),
        "monitor must not trap spatially: {:?}",
        o.outcome
    );
    assert_eq!(o.evidence.len(), 1);
    assert_eq!(o.evidence[0].action, PolicyAction::Observed);
    assert_eq!(o.violation_count, 1);
}

#[test]
fn wrapper_and_explicit_evidence_agree_on_the_first_oob_byte() {
    // The same destination object overflows twice: once through the
    // builtin memcpy's wrapper check, once through an explicit
    // per-access check. Both evidence records must name the identical
    // first out-of-bounds byte — the convention the Strict trap
    // addresses already follow.
    let src = r#"
        int main(int n) {
            char* p = (char*)malloc(16);
            char* s = (char*)malloc(32);
            for (int i = 0; i < 32; i = i + 1) s[i] = 1;
            memcpy(p, s, n);
            p[n - 1] = 2;
            return p[0];
        }
    "#;
    let (program, cfg) = compiled(src, ViolationPolicy::Hardened);
    let o = parity_reference(&program, &cfg, 17);
    assert_eq!(
        o.outcome,
        Outcome::Finished { ret: 1 },
        "both violations are clamped"
    );
    assert_eq!(o.evidence.len(), 2, "one wrapper + one explicit record");
    let (wrapper, explicit) = (o.evidence[0], o.evidence[1]);
    assert_eq!(
        wrapper.fault_addr, explicit.fault_addr,
        "wrapper and explicit checks disagree on the first OOB byte"
    );
    assert_eq!(wrapper.size, 17, "wrapper evidence carries the full length");
    assert_eq!(explicit.size, 1);
    assert!(wrapper.write && explicit.write);
    assert!(
        wrapper.pc < explicit.pc,
        "evidence must be ordered by dynamic PC"
    );
}
