//! Every benchmark kernel must execute cleanly, deterministically, and
//! with the pointer-intensity character Figure 1 requires (SPEC-style
//! array kernels at the low end, Olden-style pointer kernels at the high
//! end). Protected runs must agree with unprotected runs (differential
//! correctness: instrumentation must not change program results).

use sb_vm::{Machine, MachineConfig, NoRuntime, Outcome};
use sb_workloads::all_benchmarks;
use softbound::SoftBoundConfig;

fn run_plain(w: &sb_workloads::Workload) -> sb_vm::RunResult {
    let prog = sb_cir::compile(w.source).expect("compiles");
    let mut m = sb_ir::lower(&prog, w.name);
    sb_ir::optimize(&mut m, sb_ir::OptLevel::PreInstrument);
    let mut machine = Machine::new(&m, MachineConfig::default(), NoRuntime);
    machine.run("main", &[w.default_arg])
}

#[test]
fn benchmarks_finish_and_are_deterministic() {
    for w in all_benchmarks() {
        let a = run_plain(&w);
        let Outcome::Finished { ret } = a.outcome else {
            panic!("{}: {:?} (output: {})", w.name, a.outcome, a.output);
        };
        let b = run_plain(&w);
        assert_eq!(b.ret(), Some(ret), "{} must be deterministic", w.name);
        assert!(
            a.stats.insts > 10_000,
            "{} too small to be meaningful ({} insts)",
            w.name,
            a.stats.insts
        );
        println!(
            "{:<11} ret={:<8} insts={:<9} memops={:<8} ptr%={:.1}",
            w.name,
            ret,
            a.stats.insts,
            a.stats.mem_ops(),
            100.0 * a.stats.ptr_mem_fraction()
        );
    }
}

#[test]
fn pointer_intensity_spans_figure1_range() {
    let fracs: Vec<(String, f64)> = all_benchmarks()
        .iter()
        .map(|w| (w.name.to_string(), run_plain(w).stats.ptr_mem_fraction()))
        .collect();
    let lookup = |n: &str| fracs.iter().find(|(name, _)| name == n).expect("exists").1;

    // Left end of Figure 1: array codes with negligible pointer traffic.
    for name in ["go", "lbm", "hmmer", "compress", "ijpeg"] {
        assert!(
            lookup(name) < 0.05,
            "{name} should be <5% pointer ops, got {}",
            lookup(name)
        );
    }
    // Right end: Olden pointer chasing with a majority of pointer ops.
    for name in ["li", "em3d", "treeadd"] {
        assert!(
            lookup(name) > 0.40,
            "{name} should be >40% pointer ops, got {}",
            lookup(name)
        );
    }
    // The overall trend is increasing left-to-right (allow local noise of
    // one position by comparing ends of a sliding window of 3).
    for win in fracs.windows(4) {
        let left = win[0].1;
        let right = win[3].1;
        assert!(
            right + 0.02 >= left,
            "ordering violated: {} ({:.2}) .. {} ({:.2})",
            win[0].0,
            left,
            win[3].0,
            right
        );
    }
}

#[test]
fn protected_runs_agree_with_unprotected() {
    // Differential testing over the real workloads: SoftBound must be
    // transparent for correct programs (§6.4 — no false positives) and
    // must not change results.
    let cfgs = [
        SoftBoundConfig::full_shadow(),
        SoftBoundConfig::store_only_hash(),
    ];
    for w in all_benchmarks() {
        let plain = run_plain(&w);
        let expected = plain.ret().expect("plain run finishes");
        for cfg in &cfgs {
            let engine = softbound::Engine::new().softbound_config(cfg.clone());
            let program = engine.compile(w.source).expect("compiles");
            let r = engine.instantiate(&program).run("main", &[w.default_arg]);
            assert_eq!(
                r.ret(),
                Some(expected),
                "{} under {} diverged: {:?}",
                w.name,
                cfg.label(),
                r.outcome
            );
        }
    }
}
