//! # softbound-repro — facade crate
//!
//! Re-exports every crate of the SoftBound (PLDI 2009) reproduction
//! workspace under one roof, so examples and integration tests can say
//! `use softbound_repro::...`. See `README.md` for the tour and
//! `DESIGN.md` for the system inventory.

pub use sb_baselines as baselines;
pub use sb_bench as bench;
pub use sb_cir as cir;
pub use sb_formal as formal;
pub use sb_ir as ir;
pub use sb_vm as vm;
pub use sb_workloads as workloads;
pub use softbound as core;
