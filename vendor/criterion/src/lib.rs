//! A minimal, dependency-free drop-in for the subset of the `criterion`
//! API this workspace uses (`Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, `criterion_main!`).
//!
//! The container this workspace builds in has no crates.io registry, so
//! the real criterion cannot be fetched; this shim keeps `cargo bench`
//! runnable and prints per-benchmark median/mean wall-clock timings in a
//! criterion-like format. It performs warmup, collects one duration per
//! sample (each sample auto-scales its iteration count so short
//! benchmarks are not dominated by timer overhead), and reports the
//! median, mean, and min over samples.

use std::hint;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// True when the bench binary was invoked with `--test` (criterion's
/// test mode: `cargo bench ... -- --test`). Each benchmark then runs its
/// routine once, with no calibration, warmup, or sampling — a smoke mode
/// for CI that proves every bench still constructs and executes.
pub fn is_test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark and prints its timing line. The closure is
    /// invoked exactly once; `Bencher::iter` performs calibration, warmup
    /// and sampling internally, so per-benchmark setup done before
    /// `iter` (building data structures, materializing pages) stays
    /// outside the measured samples.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            iters: 0,
            samples: Vec::new(),
        };
        f(&mut b);
        let mut samples = b.samples;
        if samples.is_empty() {
            println!("{}/{:<40} (no iter() call)", self.name, id);
            return self;
        }
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples[0];
        println!(
            "{}/{:<40} median {:>12} mean {:>12} min {:>12} ({} samples x {} iters)",
            self.name,
            id,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            samples.len(),
            b.iters,
        );
        self
    }

    /// Ends the group (parity with criterion; nothing to flush).
    pub fn finish(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    samples: Vec<f64>,
}

impl Bencher {
    /// Calibrates, warms up, and samples `routine`, recording ns/iter
    /// per sample. Everything happens inside this one call so any setup
    /// the caller did beforehand is never timed.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let mut batch = |iters: u64| -> Duration {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            start.elapsed()
        };
        if is_test_mode() {
            // Smoke mode: execute once so panics/assertions still fire,
            // skip calibration and sampling entirely.
            let took = batch(1);
            self.iters = 1;
            self.samples = vec![took.as_nanos() as f64];
            return;
        }
        // Calibrate: find an iteration count taking ≥ ~2ms per sample.
        let mut iters = 1u64;
        loop {
            let took = batch(iters);
            if took >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        // Warmup, then measure.
        for _ in 0..2 {
            batch(iters);
        }
        self.iters = iters;
        self.samples = (0..self.sample_size)
            .map(|_| batch(iters).as_nanos() as f64 / iters as f64)
            .collect();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
