//! A minimal, dependency-free drop-in for the subset of the `proptest`
//! API this workspace uses.
//!
//! The build container has no crates.io registry, so the real proptest
//! cannot be fetched. This shim implements the same surface — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range /
//! tuple / `sample::select` / `collection::vec` / regex-string
//! strategies, `any::<T>()`, `prop_oneof!`, and the `prop_assert*`
//! macros — over a deterministic splitmix64 generator. There is no
//! shrinking: a failing case panics with the generated inputs so it can
//! be reproduced as a unit test.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Case errors and the deterministic RNG.

    use std::fmt;

    /// Why a single generated case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 stream, seeded per test from its name so
    /// failures reproduce run-to-run.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h ^ 0x9e37_79b9_7f4a_7c15)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Regex-literal string strategy, supporting the `[class]{m,n}` subset
/// (character classes with ranges and `\n`/`\t`/`\\` escapes plus a
/// counted repetition). Unsupported patterns fall back to printable
/// ASCII of length 0..32.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            _ => {
                let len = rng.below(32) as usize;
                (0..len)
                    .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
                    .collect()
            }
        }
    }
}

fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        let c = match cs[i] {
            '\\' => {
                i += 1;
                match cs.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    other => *other,
                }
            }
            other => other,
        };
        // Range `a-z` (a literal '-' at the very end is taken verbatim).
        if cs.get(i + 1) == Some(&'-') && i + 2 < cs.len() {
            let hi = cs[i + 2];
            for v in (c as u32)..=(hi as u32) {
                chars.push(char::from_u32(v)?);
            }
            i += 3;
        } else {
            chars.push(c);
            i += 1;
        }
    }
    let (lo, hi) = if let Some(counts) = tail.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
        let (a, b) = counts.split_once(',')?;
        (a.trim().parse().ok()?, b.trim().parse().ok()?)
    } else if tail == "*" {
        (0, 32)
    } else if tail == "+" {
        (1, 32)
    } else if tail.is_empty() {
        (1, 1)
    } else {
        return None;
    };
    Some((chars, lo, hi))
}

pub mod sample {
    //! `prop::sample` subset.

    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// Uniform selection from a fixed list.
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Strategy choosing uniformly among `items`.
    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty list");
        Select(items)
    }
}

pub mod collection {
    //! `prop::collection` subset.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`](vec()), mirroring proptest's
    /// `SizeRange`: built from an exclusive range, an inclusive range,
    /// or an exact length. Bounds are stored inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Draws a length from the (inclusive) bounds.
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact,
            }
        }
    }

    /// Vec strategy with a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy generating vectors of `element` with length in `size`
    /// (an exclusive range, an inclusive range, or an exact length —
    /// `vec(any::<u8>(), 0..=64)` is the byte-buffer generator the
    /// conformance fuzz harness draws its layouts from).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::any;

        #[test]
        fn size_range_forms_agree_on_bounds() {
            let mut rng = TestRng::from_name("size_range_forms");
            for _ in 0..200 {
                let v = vec(any::<u8>(), 3..7).generate(&mut rng);
                assert!((3..=6).contains(&v.len()), "exclusive: {}", v.len());
                let v = vec(any::<u8>(), 0..=4).generate(&mut rng);
                assert!(v.len() <= 4, "inclusive: {}", v.len());
                let v = vec(any::<u8>(), 5).generate(&mut rng);
                assert_eq!(v.len(), 5, "exact");
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, mirroring proptest's
    //! prelude (including the `prop` alias for the crate itself).

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Generated-case assertion: non-fatal to other cases in real proptest;
/// here it aborts the test with the case's inputs in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($l:expr, $r:expr $(,)?) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(*l != *r, "both sides are {:?}", l);
    }};
    ($l:expr, $r:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$l, &$r);
        $crate::prop_assert!(*l != *r, "both sides are {:?}: {}", l, format!($($fmt)+));
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests, mirroring proptest's macro shape:
/// an optional `#![proptest_config(...)]` followed by `#[test]`
/// functions whose arguments are drawn from strategies with `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let desc = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name), case + 1, config.cases, e, desc
                    );
                }
            }
        }
    )*};
}
